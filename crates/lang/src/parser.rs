//! Recursive-descent parser for Skil.

use crate::ast::*;
use crate::diag::{Diag, Phase, Pos, Result};
use crate::token::{lex, Spanned, Tok};

/// Parse a complete Skil program.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

const KEYWORDS: [&str; 8] = ["pardata", "struct", "if", "else", "while", "for", "return", "int"];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Diag::new(Phase::Parse, self.pos(), msg.into()))
    }

    fn eat_punct(&mut self, p: &str) -> Result<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let d = other.describe();
                self.err(format!("expected `{p}`, found {d}"))
            }
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn eat_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let d = other.describe();
                self.err(format!("expected identifier, found {d}"))
            }
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ---------------- items ----------------

    fn program(&mut self) -> Result<Program> {
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item> {
        let pos = self.pos();
        if self.at_kw("pardata") {
            self.bump();
            let name = self.eat_ident()?;
            let mut arity = 0;
            if self.at_punct("<") {
                self.bump();
                loop {
                    match self.bump() {
                        Tok::TypeVar(_) => arity += 1,
                        other => {
                            return Err(Diag::new(
                                Phase::Parse,
                                pos,
                                format!(
                                    "pardata type parameters must be type variables, found {}",
                                    other.describe()
                                ),
                            ))
                        }
                    }
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat_punct(">")?;
            }
            self.eat_punct(";")?;
            return Ok(Item::Pardata { name, arity, pos });
        }
        if self.at_kw("struct") {
            self.bump();
            let name = self.eat_ident()?;
            let mut params = Vec::new();
            if self.at_punct("<") {
                self.bump();
                loop {
                    match self.bump() {
                        Tok::TypeVar(v) => params.push(v),
                        other => {
                            return Err(Diag::new(
                                Phase::Parse,
                                pos,
                                format!(
                                    "struct type parameters must be type variables, found {}",
                                    other.describe()
                                ),
                            ))
                        }
                    }
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat_punct(">")?;
            }
            self.eat_punct("{")?;
            let mut fields = Vec::new();
            while !self.at_punct("}") {
                let fty = self.type_expr()?;
                let fname = self.eat_ident()?;
                self.eat_punct(";")?;
                fields.push((fname, fty));
            }
            self.eat_punct("}")?;
            self.eat_punct(";")?;
            return Ok(Item::Struct { name, params, fields, pos });
        }
        // function: type name ( params ) { body }
        let ret = self.type_expr()?;
        let name = self.eat_ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                params.push(self.param()?);
                if self.at_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(Item::Func(Func { name, params, ret, body, pos }))
    }

    /// `type name` or the functional form `type name(argtypes...)`.
    fn param(&mut self) -> Result<Param> {
        let pos = self.pos();
        let ty = self.type_expr()?;
        let name = self.eat_ident()?;
        if self.at_punct("(") {
            self.bump();
            let mut args = Vec::new();
            if !self.at_punct(")") {
                loop {
                    args.push(self.type_expr()?);
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            return Ok(Param { name, ty: TypeExpr::Fun(args, Box::new(ty)), pos });
        }
        Ok(Param { name, ty, pos })
    }

    // ---------------- types ----------------

    fn type_expr(&mut self) -> Result<TypeExpr> {
        match self.peek().clone() {
            Tok::TypeVar(v) => {
                self.bump();
                Ok(TypeExpr::Var(v))
            }
            Tok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) && name != "int" {
                    return self.err(format!("`{name}` is not a type"));
                }
                self.bump();
                let mut args = Vec::new();
                if self.at_punct("<") {
                    self.bump();
                    loop {
                        args.push(self.type_expr()?);
                        if self.at_punct(",") {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.eat_punct(">")?;
                }
                Ok(TypeExpr::Named(name, args))
            }
            other => {
                let d = other.describe();
                self.err(format!("expected a type, found {d}"))
            }
        }
    }

    // ---------------- statements ----------------

    fn block(&mut self) -> Result<Block> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(Block(stmts))
    }

    fn block_or_single(&mut self) -> Result<Block> {
        if self.at_punct("{") {
            self.block()
        } else {
            Ok(Block(vec![self.stmt()?]))
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        if self.at_kw("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let then = self.block_or_single()?;
            let els = if self.at_kw("else") {
                self.bump();
                Some(self.block_or_single()?)
            } else {
                None
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.at_kw("while") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_kw("for") {
            self.bump();
            self.eat_punct("(")?;
            let init =
                if self.at_punct(";") { None } else { Some(Box::new(self.simple_stmt_no_semi()?)) };
            self.eat_punct(";")?;
            let cond = if self.at_punct(";") { None } else { Some(self.expr()?) };
            self.eat_punct(";")?;
            let step =
                if self.at_punct(")") { None } else { Some(Box::new(self.simple_stmt_no_semi()?)) };
            self.eat_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::For { init, cond, step, body });
        }
        if self.at_kw("return") {
            self.bump();
            let value = if self.at_punct(";") { None } else { Some(self.expr()?) };
            self.eat_punct(";")?;
            return Ok(Stmt::Return { value, pos });
        }
        let s = self.simple_stmt_no_semi()?;
        self.eat_punct(";")?;
        Ok(s)
    }

    /// Declaration, assignment, or expression — without the trailing
    /// semicolon (shared with `for` headers).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        // Try a declaration: `type ident [= expr]`. Backtrack on failure.
        let save = self.at;
        if matches!(self.peek(), Tok::Ident(_) | Tok::TypeVar(_)) {
            if let Ok(ty) = self.type_expr() {
                if let Tok::Ident(_) = self.peek() {
                    // `type ident` where the next token is not `(`
                    // (which would be a call like `f (x)`... but calls
                    // are Expr::Var applied, and `ident ident(` is not
                    // valid expression syntax, so `(` after the second
                    // ident still means a declaration of a variable is
                    // NOT intended — treat as declaration only when
                    // followed by `=`, `;` or `,`).
                    let name = self.eat_ident()?;
                    match self.peek() {
                        Tok::Punct("=") => {
                            self.bump();
                            let init = self.expr()?;
                            return Ok(Stmt::Decl { ty, name, init: Some(init), pos });
                        }
                        Tok::Punct(";") | Tok::Punct(",") => {
                            return Ok(Stmt::Decl { ty, name, init: None, pos });
                        }
                        _ => {
                            self.at = save;
                        }
                    }
                } else {
                    self.at = save;
                }
            } else {
                self.at = save;
            }
        }
        // Assignment: `ident = expr`
        if let (Tok::Ident(name), Tok::Punct("=")) = (self.peek().clone(), self.peek2().clone()) {
            self.bump();
            self.bump();
            let value = self.expr()?;
            return Ok(Stmt::Assign { name, value, pos });
        }
        // Plain expression
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_punct("||") {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: "||".into(), lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.eq_expr()?;
        while self.at_punct("&&") {
            let pos = self.pos();
            self.bump();
            let rhs = self.eq_expr()?;
            lhs = Expr::Binary { op: "&&".into(), lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.rel_expr()?;
        while let Tok::Punct(p @ ("==" | "!=")) = self.peek() {
            let op = p.to_string();
            let pos = self.pos();
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.add_expr()?;
        while let Tok::Punct(p @ ("<" | "<=" | ">" | ">=")) = self.peek() {
            let op = p.to_string();
            let pos = self.pos();
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        while let Tok::Punct(p @ ("+" | "-")) = self.peek() {
            let op = p.to_string();
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Tok::Punct(p @ ("*" | "/" | "%")) = self.peek() {
            let op = p.to_string();
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let pos = self.pos();
        if self.at_punct("-") {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(Expr::Unary { op: "-".into(), expr: Box::new(e), pos });
        }
        if self.at_punct("!") {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(Expr::Unary { op: "!".into(), expr: Box::new(e), pos });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.at_punct("(") {
                let pos = self.pos();
                self.bump();
                let mut args = Vec::new();
                if !self.at_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.at_punct(",") {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat_punct(")")?;
                e = Expr::Call { callee: Box::new(e), args, pos };
                continue;
            }
            if self.at_punct(".") || self.at_punct("->") {
                let pos = self.pos();
                self.bump();
                let field = self.eat_ident()?;
                e = Expr::Field { expr: Box::new(e), field, pos };
                continue;
            }
            if self.at_punct("[") {
                let pos = self.pos();
                self.bump();
                let index = self.expr()?;
                self.eat_punct("]")?;
                e = Expr::IndexAt { expr: Box::new(e), index: Box::new(index), pos };
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, pos))
            }
            Tok::Ident(name) => {
                self.bump();
                // struct literal `name{...}`
                if self.at_punct("{") {
                    self.bump();
                    let mut fields = Vec::new();
                    if !self.at_punct("}") {
                        loop {
                            fields.push(self.expr()?);
                            if self.at_punct(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct("}")?;
                    return Ok(Expr::StructLit { name, fields, pos });
                }
                Ok(Expr::Var(name, pos))
            }
            Tok::Punct("{") => {
                self.bump();
                let mut elems = Vec::new();
                if !self.at_punct("}") {
                    loop {
                        elems.push(self.expr()?);
                        if self.at_punct(",") {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat_punct("}")?;
                Ok(Expr::BraceList { elems, pos })
            }
            Tok::Punct("(") => {
                self.bump();
                // operator section `(+)` etc.
                if let Tok::Punct(
                    op @ ("+" | "-" | "*" | "/" | "%" | "==" | "!=" | "<" | "<=" | ">" | ">="),
                ) = self.peek().clone()
                {
                    if matches!(self.peek2(), Tok::Punct(")")) {
                        self.bump();
                        self.bump();
                        return Ok(Expr::OpSection(op.to_string(), pos));
                    }
                }
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => {
                let d = other.describe();
                self.err(format!("expected an expression, found {d}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pardata_and_struct() {
        let p = parse(
            "pardata array <$t>;\n\
             struct elemrec { float val; int row; int col; };",
        )
        .unwrap();
        assert_eq!(p.items.len(), 2);
        assert!(matches!(&p.items[0], Item::Pardata { name, arity: 1, .. } if name == "array"));
        match &p.items[1] {
            Item::Struct { name, fields, .. } => {
                assert_eq!(name, "elemrec");
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[1].0, "row");
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn parses_polymorphic_struct() {
        let p = parse("struct pair <$a, $b> { $a fst; $b snd; };").unwrap();
        match &p.items[0] {
            Item::Struct { params, .. } => assert_eq!(params, &["a", "b"]),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_hof_signature() {
        // the paper's above_thresh / map example
        let p = parse(
            "int above_thresh(float thresh, float elem, Index ix) { return elem >= thresh; }",
        )
        .unwrap();
        match &p.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "above_thresh");
                assert_eq!(f.params.len(), 3);
                assert_eq!(f.params[2].ty, TypeExpr::named("Index"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_functional_parameter() {
        let p = parse("$b apply($b f($a), $a x) { return f(x); }").unwrap();
        match &p.items[0] {
            Item::Func(f) => {
                assert_eq!(
                    f.params[0].ty,
                    TypeExpr::Fun(
                        vec![TypeExpr::Var("a".into())],
                        Box::new(TypeExpr::Var("b".into()))
                    )
                );
                assert_eq!(f.ret, TypeExpr::Var("b".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_statements() {
        let p = parse(
            "void main() {\n\
               int i;\n\
               int n = 10;\n\
               for (i = 0 ; i < n ; i = i + 1) {\n\
                 if (i % 2 == 0) n = n - 1; else n = n + 1;\n\
               }\n\
               while (n > 0) { n = n - 2; }\n\
               return;\n\
             }",
        )
        .unwrap();
        match &p.items[0] {
            Item::Func(f) => assert_eq!(f.body.0.len(), 5),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_generic_type_declarations() {
        let p = parse("void main() { array<float> a; array<int> b = f(); }").unwrap();
        match &p.items[0] {
            Item::Func(f) => {
                assert!(matches!(
                    &f.body.0[0],
                    Stmt::Decl { ty: TypeExpr::Named(n, args), .. }
                        if n == "array" && args.len() == 1
                ));
                assert!(matches!(&f.body.0[1], Stmt::Decl { init: Some(_), .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_operator_sections_and_currying() {
        let p =
            parse("void main() { x = fold((+), l); y = map((*)(2), l); z = f(a)(b); }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        // fold((+), l)
        match &f.body.0[0] {
            Stmt::Assign { value: Expr::Call { args, .. }, .. } => {
                assert!(matches!(&args[0], Expr::OpSection(op, _) if op == "+"));
            }
            other => panic!("{other:?}"),
        }
        // map((*)(2), l): first arg is a Call of an OpSection
        match &f.body.0[1] {
            Stmt::Assign { value: Expr::Call { args, .. }, .. } => match &args[0] {
                Expr::Call { callee, args, .. } => {
                    assert!(matches!(&**callee, Expr::OpSection(op, _) if op == "*"));
                    assert_eq!(args.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // f(a)(b): nested call
        match &f.body.0[2] {
            Stmt::Assign { value: Expr::Call { callee, .. }, .. } => {
                assert!(matches!(&**callee, Expr::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_brace_and_struct_literals() {
        let p = parse("void main() { ix = {1, 2}; e = elemrec{1.5, 2, 3}; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(
            &f.body.0[0],
            Stmt::Assign { value: Expr::BraceList { elems, .. }, .. } if elems.len() == 2
        ));
        assert!(matches!(
            &f.body.0[1],
            Stmt::Assign { value: Expr::StructLit { name, fields, .. }, .. }
                if name == "elemrec" && fields.len() == 3
        ));
    }

    #[test]
    fn parses_field_access_chain() {
        let p = parse("void main() { x = e.val + b.lower.row; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(&f.body.0[0], Stmt::Assign { .. }));
    }

    #[test]
    fn parses_index_access_and_arrow() {
        // the paper's `ix[0]` and `bds->lowerBd[1]`
        let p = parse("void main() { x = ix[0] + bds->lowerBd[1]; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Assign { value, .. } = &f.body.0[0] else { panic!() };
        let Expr::Binary { lhs, rhs, .. } = value else { panic!() };
        assert!(matches!(&**lhs, Expr::IndexAt { .. }));
        match &**rhs {
            Expr::IndexAt { expr, .. } => {
                assert!(matches!(&**expr, Expr::Field { field, .. } if field == "lowerBd"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("void main() { x = 1 + 2 * 3 == 7 && 1 < 2; }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Assign { value, .. } = &f.body.0[0] else { panic!() };
        // top node is &&
        assert!(matches!(value, Expr::Binary { op, .. } if op == "&&"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse("void main() { int x = 1 }").is_err());
    }

    #[test]
    fn error_on_bad_item() {
        assert!(parse("42;").is_err());
    }

    #[test]
    fn for_with_declaration_init() {
        let p = parse("void main() { for (int i = 0; i < 3; i = i + 1) { f(i); } }").unwrap();
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(&f.body.0[0], Stmt::For { init: Some(s), .. }
            if matches!(&**s, Stmt::Decl { .. })));
    }
}
