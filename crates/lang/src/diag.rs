//! Compiler diagnostics with source positions.

use std::fmt;

/// A position in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which compiler phase rejected the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenizing the source.
    Lex,
    /// Parsing.
    Parse,
    /// Polymorphic type checking.
    Type,
    /// The instantiation procedure.
    Instantiate,
    /// Program execution.
    Run,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
            Phase::Instantiate => "instantiate",
            Phase::Run => "runtime",
        };
        f.write_str(s)
    }
}

/// A compiler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Offending phase.
    pub phase: Phase,
    /// Source position (best effort).
    pub pos: Pos,
    /// Human-readable message.
    pub msg: String,
}

impl Diag {
    /// Build a diagnostic.
    pub fn new(phase: Phase, pos: Pos, msg: impl Into<String>) -> Self {
        Diag { phase, pos, msg: msg.into() }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.pos, self.msg)
    }
}

impl std::error::Error for Diag {}

/// Result alias for compiler phases.
pub type Result<T> = std::result::Result<T, Diag>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_phase_and_pos() {
        let d = Diag::new(Phase::Type, Pos { line: 3, col: 7 }, "mismatch");
        assert_eq!(d.to_string(), "type error at 3:7: mismatch");
    }
}
