//! Runtime values of interpreted Skil programs.

use std::sync::Arc;

use skil_runtime::{Wire, WireError, WireReader};

/// A persistent cons list with structural sharing.
///
/// The paper's `list<$t>` values are classic cons lists, and the
/// intrinsics (`cons`, `head`, `tail`) are the classic constructors and
/// selectors. Backing them with a `Vec` made the ubiquitous
/// `l = cons(x, l)` building loop quadratic: every `cons` copied the
/// whole tail, and every variable reference deep-cloned the spine. The
/// shared-node representation makes `cons`, `head`, `tail`, `len`, and
/// `clone` all O(1); only `append` and traversal (printing, flattening,
/// equality) walk the spine.
#[derive(Clone, Debug, Default)]
pub struct ConsList {
    head: Option<Arc<ListNode>>,
}

#[derive(Debug)]
struct ListNode {
    elem: Value,
    /// Length of the list starting at this node (memoized so `len` is
    /// O(1) despite sharing).
    len: usize,
    rest: Option<Arc<ListNode>>,
}

impl ConsList {
    /// The empty list (`nil`).
    pub fn new() -> Self {
        ConsList { head: None }
    }

    /// Number of elements, O(1).
    pub fn len(&self) -> usize {
        self.head.as_ref().map_or(0, |n| n.len)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// `cons(elem, rest)` — prepend without copying the tail, O(1).
    pub fn cons(elem: Value, rest: &ConsList) -> ConsList {
        ConsList {
            head: Some(Arc::new(ListNode { elem, len: rest.len() + 1, rest: rest.head.clone() })),
        }
    }

    /// First element, if any.
    pub fn first(&self) -> Option<&Value> {
        self.head.as_ref().map(|n| &n.elem)
    }

    /// The list after the first element — shares the tail, O(1).
    pub fn rest(&self) -> Option<ConsList> {
        self.head.as_ref().map(|n| ConsList { head: n.rest.clone() })
    }

    /// `append(self, other)` — rebuilds only the left spine (with the
    /// exact capacity reserved up front) and shares the right list.
    pub fn append(&self, other: &ConsList) -> ConsList {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut left = Vec::with_capacity(self.len());
        left.extend(self.iter().cloned());
        let mut out = other.clone();
        while let Some(v) = left.pop() {
            out = ConsList::cons(v, &out);
        }
        out
    }

    /// Iterate front to back.
    pub fn iter(&self) -> ConsIter<'_> {
        ConsIter { node: self.head.as_deref() }
    }

    /// Collect into a `Vec` (used at the task-skeleton boundary, where
    /// `skil-core` farms out plain `Vec<Value>` task lists).
    pub fn to_vec(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter().cloned());
        out
    }

    /// Build from a `Vec`, preserving order.
    pub fn from_vec(mut items: Vec<Value>) -> ConsList {
        let mut out = ConsList::new();
        while let Some(v) = items.pop() {
            out = ConsList::cons(v, &out);
        }
        out
    }
}

impl From<Vec<Value>> for ConsList {
    fn from(items: Vec<Value>) -> Self {
        ConsList::from_vec(items)
    }
}

impl FromIterator<Value> for ConsList {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        ConsList::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for ConsList {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let (mut a, mut b) = (self.head.as_ref(), other.head.as_ref());
        while let (Some(x), Some(y)) = (a, b) {
            if Arc::ptr_eq(x, y) {
                return true; // shared tail — equal by construction
            }
            if x.elem != y.elem {
                return false;
            }
            a = x.rest.as_ref();
            b = y.rest.as_ref();
        }
        true
    }
}

impl Drop for ConsList {
    fn drop(&mut self) {
        // Unlink iteratively: the derived recursive drop would overflow
        // the stack on long uniquely-owned spines (the 10k+ builds this
        // representation exists for).
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut n) => cur = n.rest.take(),
                Err(_) => break, // shared further down — someone else's job
            }
        }
    }
}

/// Front-to-back iterator over a [`ConsList`].
pub struct ConsIter<'a> {
    node: Option<&'a ListNode>,
}

impl<'a> Iterator for ConsIter<'a> {
    type Item = &'a Value;

    fn next(&mut self) -> Option<&'a Value> {
        let n = self.node?;
        self.node = n.rest.as_deref();
        Some(&n.elem)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.node.map_or(0, |n| n.len);
        (n, Some(n))
    }
}

/// A dynamic Skil value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `int`.
    Int(i64),
    /// `float`.
    Float(f64),
    /// `void`.
    Unit,
    /// `Index` / `Size` (components may be negative in `array_create`'s
    /// "derive this bound" convention).
    Index([i64; 2]),
    /// Partition bounds: lower (inclusive), upper (exclusive).
    Bounds([i64; 2], [i64; 2]),
    /// A struct instance: index into `FoProgram::structs` plus fields.
    Struct(u32, Vec<Value>),
    /// A cons list.
    List(ConsList),
    /// A distributed array handle (index into the interpreter's local
    /// array table). Never crosses processors: the paper's pardata
    /// values are not flattenable.
    Array(usize),
}

impl Value {
    /// Render for `print`.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Unit => "()".into(),
            Value::Index(ix) => format!("{{{}, {}}}", ix[0], ix[1]),
            Value::Bounds(lo, up) => {
                format!("bounds{{[{}, {}] .. [{}, {}]}}", lo[0], lo[1], up[0], up[1])
            }
            Value::Struct(_, fields) => {
                let inner: Vec<String> = fields.iter().map(|f| f.render()).collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(|f| f.render()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Array(h) => format!("array#{h}"),
        }
    }

    /// The `int` inside, or a descriptive panic (interpreter invariants
    /// guarantee the type after checking).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The `float` inside.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// The `Index` inside.
    pub fn as_index(&self) -> [i64; 2] {
        match self {
            Value::Index(ix) => *ix,
            other => panic!("expected Index, got {other:?}"),
        }
    }

    /// The array handle inside.
    pub fn as_array(&self) -> usize {
        match self {
            Value::Array(h) => *h,
            other => panic!("expected array, got {other:?}"),
        }
    }

    /// Approximate wire size in bytes (for cost accounting).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 9,
            Value::Unit => 1,
            Value::Index(_) | Value::Bounds(_, _) => 17,
            Value::Struct(_, fields) => 5 + fields.iter().map(|f| f.wire_size()).sum::<usize>(),
            Value::List(items) => 9 + items.iter().map(|f| f.wire_size()).sum::<usize>(),
            Value::Array(_) => 9,
        }
    }
}

impl Wire for Value {
    fn flatten(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(0);
                v.flatten(out);
            }
            Value::Float(v) => {
                out.push(1);
                v.flatten(out);
            }
            Value::Unit => out.push(2),
            Value::Index(ix) => {
                out.push(3);
                ix[0].flatten(out);
                ix[1].flatten(out);
            }
            Value::Bounds(lo, up) => {
                out.push(4);
                lo[0].flatten(out);
                lo[1].flatten(out);
                up[0].flatten(out);
                up[1].flatten(out);
            }
            Value::Struct(id, fields) => {
                out.push(5);
                id.flatten(out);
                fields.flatten(out);
            }
            Value::List(items) => {
                // Same bytes as the historical `Vec<Value>` encoding:
                // u64 element count followed by the elements in order.
                out.push(6);
                (items.len() as u64).flatten(out);
                for item in items.iter() {
                    item.flatten(out);
                }
            }
            Value::Array(_) => {
                // the paper's rule: distributed structures move only
                // through skeletons, never as flattened values
                panic!("a pardata value cannot be flattened into a message");
            }
        }
    }

    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take(1)?[0] {
            0 => Value::Int(i64::unflatten(r)?),
            1 => Value::Float(f64::unflatten(r)?),
            2 => Value::Unit,
            3 => Value::Index([i64::unflatten(r)?, i64::unflatten(r)?]),
            4 => Value::Bounds(
                [i64::unflatten(r)?, i64::unflatten(r)?],
                [i64::unflatten(r)?, i64::unflatten(r)?],
            ),
            5 => Value::Struct(u32::unflatten(r)?, Vec::<Value>::unflatten(r)?),
            6 => Value::List(ConsList::from_vec(Vec::<Value>::unflatten(r)?)),
            _ => return Err(WireError::Invalid("bad Value tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(items: Vec<Value>) -> Value {
        Value::List(ConsList::from_vec(items))
    }

    fn roundtrip(v: Value) {
        let b = v.to_bytes();
        assert_eq!(Value::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn values_roundtrip() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Float(2.5));
        roundtrip(Value::Unit);
        roundtrip(Value::Index([3, -1]));
        roundtrip(Value::Bounds([0, 0], [4, 5]));
        roundtrip(Value::Struct(2, vec![Value::Float(1.5), Value::Int(7)]));
        roundtrip(list_of(vec![Value::Int(1), list_of(vec![Value::Float(0.5)])]));
    }

    #[test]
    #[should_panic(expected = "pardata")]
    fn arrays_cannot_flatten() {
        let _ = Value::Array(0).to_bytes();
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Int(3).render(), "3");
        assert_eq!(Value::Index([1, 2]).render(), "{1, 2}");
        assert_eq!(Value::Struct(0, vec![Value::Int(1), Value::Float(0.5)]).render(), "{1, 0.5}");
        assert_eq!(list_of(vec![Value::Int(1), Value::Int(2)]).render(), "[1, 2]");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Float(1.5).as_float(), 1.5);
        assert_eq!(Value::Index([1, 2]).as_index(), [1, 2]);
        assert_eq!(Value::Array(3).as_array(), 3);
    }

    #[test]
    fn cons_shares_the_tail() {
        let base = ConsList::from_vec(vec![Value::Int(1), Value::Int(2)]);
        let a = ConsList::cons(Value::Int(10), &base);
        let b = ConsList::cons(Value::Int(20), &base);
        // both extended lists see the shared tail unchanged
        assert_eq!(a.to_vec(), vec![Value::Int(10), Value::Int(1), Value::Int(2)]);
        assert_eq!(b.to_vec(), vec![Value::Int(20), Value::Int(1), Value::Int(2)]);
        assert_eq!(a.rest().unwrap(), base);
        assert_eq!(a.rest().unwrap(), b.rest().unwrap());
    }

    #[test]
    fn ten_thousand_element_build_is_cheap() {
        // The canonical Skil building loop `l = cons(i, l)`: with shared
        // tails each step is O(1), so 10k elements assemble (and drop)
        // without copying 10k spines. This also exercises the iterative
        // Drop (a recursive drop would blow the stack well before 100k).
        let n = 10_000;
        let mut l = ConsList::new();
        for i in 0..n {
            l = ConsList::cons(Value::Int(i), &l);
        }
        assert_eq!(l.len(), n as usize);
        assert_eq!(l.first(), Some(&Value::Int(n - 1)));
        assert_eq!(l.iter().count(), n as usize);
        // tail is O(1) and keeps the length bookkeeping consistent
        let t = l.rest().unwrap();
        assert_eq!(t.len(), n as usize - 1);
        assert_eq!(t.first(), Some(&Value::Int(n - 2)));
        // equality on long equal lists terminates via the pointer-eq
        // shortcut on the shared spine
        let l2 = ConsList::cons(Value::Int(n - 1), &t);
        assert_eq!(l, l2);
    }

    #[test]
    fn append_shares_the_right_list() {
        let a = ConsList::from_vec(vec![Value::Int(1), Value::Int(2)]);
        let b = ConsList::from_vec(vec![Value::Int(3)]);
        let ab = a.append(&b);
        assert_eq!(ab.to_vec(), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(ab.len(), 3);
        assert!(a.append(&ConsList::new()) == a);
        assert!(ConsList::new().append(&b) == b);
    }
}
