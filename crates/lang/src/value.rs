//! Runtime values of interpreted Skil programs.

use skil_runtime::{Wire, WireError, WireReader};

/// A dynamic Skil value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `int`.
    Int(i64),
    /// `float`.
    Float(f64),
    /// `void`.
    Unit,
    /// `Index` / `Size` (components may be negative in `array_create`'s
    /// "derive this bound" convention).
    Index([i64; 2]),
    /// Partition bounds: lower (inclusive), upper (exclusive).
    Bounds([i64; 2], [i64; 2]),
    /// A struct instance: index into `FoProgram::structs` plus fields.
    Struct(u32, Vec<Value>),
    /// A cons list.
    List(Vec<Value>),
    /// A distributed array handle (index into the interpreter's local
    /// array table). Never crosses processors: the paper's pardata
    /// values are not flattenable.
    Array(usize),
}

impl Value {
    /// Render for `print`.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Unit => "()".into(),
            Value::Index(ix) => format!("{{{}, {}}}", ix[0], ix[1]),
            Value::Bounds(lo, up) => {
                format!("bounds{{[{}, {}] .. [{}, {}]}}", lo[0], lo[1], up[0], up[1])
            }
            Value::Struct(_, fields) => {
                let inner: Vec<String> = fields.iter().map(|f| f.render()).collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(|f| f.render()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Array(h) => format!("array#{h}"),
        }
    }

    /// The `int` inside, or a descriptive panic (interpreter invariants
    /// guarantee the type after checking).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The `float` inside.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// The `Index` inside.
    pub fn as_index(&self) -> [i64; 2] {
        match self {
            Value::Index(ix) => *ix,
            other => panic!("expected Index, got {other:?}"),
        }
    }

    /// The array handle inside.
    pub fn as_array(&self) -> usize {
        match self {
            Value::Array(h) => *h,
            other => panic!("expected array, got {other:?}"),
        }
    }

    /// Approximate wire size in bytes (for cost accounting).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 9,
            Value::Unit => 1,
            Value::Index(_) | Value::Bounds(_, _) => 17,
            Value::Struct(_, fields) => 5 + fields.iter().map(|f| f.wire_size()).sum::<usize>(),
            Value::List(items) => 9 + items.iter().map(|f| f.wire_size()).sum::<usize>(),
            Value::Array(_) => 9,
        }
    }
}

impl Wire for Value {
    fn flatten(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(0);
                v.flatten(out);
            }
            Value::Float(v) => {
                out.push(1);
                v.flatten(out);
            }
            Value::Unit => out.push(2),
            Value::Index(ix) => {
                out.push(3);
                ix[0].flatten(out);
                ix[1].flatten(out);
            }
            Value::Bounds(lo, up) => {
                out.push(4);
                lo[0].flatten(out);
                lo[1].flatten(out);
                up[0].flatten(out);
                up[1].flatten(out);
            }
            Value::Struct(id, fields) => {
                out.push(5);
                id.flatten(out);
                fields.flatten(out);
            }
            Value::List(items) => {
                out.push(6);
                items.flatten(out);
            }
            Value::Array(_) => {
                // the paper's rule: distributed structures move only
                // through skeletons, never as flattened values
                panic!("a pardata value cannot be flattened into a message");
            }
        }
    }

    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take(1)?[0] {
            0 => Value::Int(i64::unflatten(r)?),
            1 => Value::Float(f64::unflatten(r)?),
            2 => Value::Unit,
            3 => Value::Index([i64::unflatten(r)?, i64::unflatten(r)?]),
            4 => Value::Bounds(
                [i64::unflatten(r)?, i64::unflatten(r)?],
                [i64::unflatten(r)?, i64::unflatten(r)?],
            ),
            5 => Value::Struct(u32::unflatten(r)?, Vec::<Value>::unflatten(r)?),
            6 => Value::List(Vec::<Value>::unflatten(r)?),
            _ => return Err(WireError::Invalid("bad Value tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let b = v.to_bytes();
        assert_eq!(Value::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn values_roundtrip() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Float(2.5));
        roundtrip(Value::Unit);
        roundtrip(Value::Index([3, -1]));
        roundtrip(Value::Bounds([0, 0], [4, 5]));
        roundtrip(Value::Struct(2, vec![Value::Float(1.5), Value::Int(7)]));
        roundtrip(Value::List(vec![Value::Int(1), Value::List(vec![Value::Float(0.5)])]));
    }

    #[test]
    #[should_panic(expected = "pardata")]
    fn arrays_cannot_flatten() {
        let _ = Value::Array(0).to_bytes();
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Int(3).render(), "3");
        assert_eq!(Value::Index([1, 2]).render(), "{1, 2}");
        assert_eq!(Value::Struct(0, vec![Value::Int(1), Value::Float(0.5)]).render(), "{1, 0.5}");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Float(1.5).as_float(), 1.5);
        assert_eq!(Value::Index([1, 2]).as_index(), [1, 2]);
        assert_eq!(Value::Array(3).as_array(), 3);
    }
}
