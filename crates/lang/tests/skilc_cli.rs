//! End-to-end tests of the `skilc` driver binary.

use std::process::Command;

fn skilc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skilc"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("skilc-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("write program");
    path
}

const HELLO: &str = "void main() { if (procId == 0) { print(41 + 1); } }";

#[test]
fn emits_c_by_default() {
    let path = write_temp("hello.skil", HELLO);
    let out = skilc().arg(&path).output().expect("run skilc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = String::from_utf8_lossy(&out.stdout);
    assert!(c.contains("void main(void)"), "{c}");
    assert!(c.contains("translation by instantiation"), "{c}");
}

#[test]
fn check_mode_reports_instances() {
    let path = write_temp("check.skil", HELLO);
    let out = skilc().arg("--check").arg(&path).output().expect("run skilc");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ok ("), "{err}");
}

#[test]
fn run_mode_prints_output_and_summary() {
    let path = write_temp("run.skil", HELLO);
    let out = skilc().arg("--run").arg("--mesh").arg("2x2").arg(&path).output().expect("run skilc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[proc 0] 42"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("simulated"), "{stderr}");
    assert!(stderr.contains("4 T800s"), "{stderr}");
}

#[test]
fn trace_mode_prints_timeline() {
    let src = "int initf(Index ix) { return ix[0]; }\n\
               int conv(int v, Index ix) { return v; }\n\
               void main() {\n\
                 array<int> a = array_create(1, {64,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                 int s = array_fold(conv, (+), a);\n\
                 if (procId == 0) { print(s); }\n\
               }";
    let path = write_temp("trace.skil", src);
    let out = skilc().arg("--run").arg("--trace").arg(&path).output().expect("run skilc");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("p0"), "{stderr}");
    assert!(stderr.contains("= fold"), "{stderr}");
}

#[test]
fn trace_out_writes_chrome_trace_json() {
    let src = "int initf(Index ix) { return ix[0]; }\n\
               int conv(int v, Index ix) { return v; }\n\
               void main() {\n\
                 array<int> a = array_create(1, {64,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                 int s = array_fold(conv, (+), a);\n\
                 if (procId == 0) { print(s); }\n\
               }";
    let path = write_temp("trace_out.skil", src);
    let json_path = std::env::temp_dir().join("skilc-tests").join("trace_out.json");
    let _ = std::fs::remove_file(&json_path);
    let out = skilc()
        .arg("--run")
        .arg("--trace-out")
        .arg(&json_path)
        .arg(&path)
        .output()
        .expect("run skilc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wrote Chrome trace"), "{stderr}");
    let json = std::fs::read_to_string(&json_path).expect("trace file written");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"fold\""), "{json}");
    assert!(json.contains("skil-trace-v1"), "{json}");
}

#[test]
fn type_errors_exit_nonzero_with_position() {
    let path = write_temp("bad.skil", "void main() { int x = 1.5; }");
    let out = skilc().arg(&path).output().expect("run skilc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("type error"), "{err}");
    assert!(err.contains("1:"), "position reported: {err}");
}

#[test]
fn missing_file_is_reported() {
    let out = skilc().arg("/nonexistent/nope.skil").output().expect("run skilc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn bad_flags_show_usage() {
    let out = skilc().arg("--frobnicate").output().expect("run skilc");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn bad_opt_level_shows_usage() {
    let path = write_temp("badopt.skil", HELLO);
    let out = skilc().arg("--opt-level").arg("9").arg(&path).output().expect("run skilc");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn run_output_identical_at_every_opt_level() {
    let src = "int sumto(int n) {\n\
                 int s = 0;\n\
                 int i = 1;\n\
                 while (i <= n) { s = s + i; i = i + 1; }\n\
                 return s;\n\
               }\n\
               void main() { if (procId == 0) { print(sumto(10)); } }";
    let path = write_temp("optlevels.skil", src);
    let mut runs = Vec::new();
    for level in ["0", "1", "2"] {
        let out = skilc()
            .arg("--run")
            .arg("--opt-level")
            .arg(level)
            .arg(&path)
            .output()
            .expect("run skilc");
        assert!(out.status.success(), "-O{level}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains("[proc 0] 55"), "-O{level}: {stdout}");
        // the cycle count in the summary line must not depend on the level
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        let cycles = stderr.split('(').nth(1).map(|s| s.to_string());
        runs.push((stdout, cycles));
    }
    assert_eq!(runs[0], runs[1], "-O0 vs -O1");
    assert_eq!(runs[1], runs[2], "-O1 vs -O2");
}

#[test]
fn emit_bytecode_prints_listing_and_stats() {
    let src = "int sumto(int n) {\n\
                 int s = 0;\n\
                 int i = 1;\n\
                 while (i <= n) { s = s + i; i = i + 1; }\n\
                 return s;\n\
               }\n\
               void main() { if (procId == 0) { print(sumto(10)); } }";
    let path = write_temp("emitbc.skil", src);

    let opt = skilc().arg("--emit-bytecode").arg(&path).output().expect("run skilc");
    assert!(opt.status.success(), "{}", String::from_utf8_lossy(&opt.stderr));
    let listing = String::from_utf8_lossy(&opt.stdout);
    assert!(listing.contains("fn main"), "{listing}");
    assert!(listing.contains("charge ["), "resolved charge summaries: {listing}");
    let stderr = String::from_utf8_lossy(&opt.stderr);
    assert!(stderr.contains("opt level 2"), "{stderr}");
    assert!(stderr.contains("opt: instrs"), "per-pass stats on stderr: {stderr}");

    // the raw listing is the unoptimized compiler output — no fused ops
    let raw = skilc().arg("--emit-bytecode=raw").arg(&path).output().expect("run skilc");
    assert!(raw.status.success());
    let raw_listing = String::from_utf8_lossy(&raw.stdout);
    assert!(raw_listing.contains("fn main"), "{raw_listing}");
    assert!(!raw_listing.contains("binstore"), "raw listing is unfused: {raw_listing}");
    // the optimized listing of this loop does fuse
    assert!(listing.contains("binstore") || listing.contains("jnz.cmp"), "{listing}");
}

#[test]
fn emit_rust_prints_native_module() {
    let src = "int initf(Index ix) { return ix[0] * 3; }\n\
               int conv(int v, Index ix) { return v; }\n\
               void main() {\n\
                 array<int> a = array_create(1, {64,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                 int s = array_fold(conv, (+), a);\n\
                 if (procId == 0) { print(s); }\n\
               }";
    let path = write_temp("emitrust.skil", src);
    let out = skilc().arg("--emit-rust").arg(&path).output().expect("run skilc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let rust = String::from_utf8_lossy(&out.stdout);
    // the module must be self-contained: entry points, the FFI value
    // codec, and the compiled kernels all in one listing
    assert!(rust.contains("pub extern \"C\" fn skil_main"), "{rust}");
    assert!(rust.contains("pub extern \"C\" fn skil_kernel"), "{rust}");
    assert!(rust.contains("pub extern \"C\" fn skil_kbulk"), "{rust}");
    assert!(rust.contains("pub extern \"C\" fn skil_abi"), "{rust}");
    assert!(rust.contains("fn k0"), "compiled kernel bodies present: {rust}");
}

#[test]
fn run_mode_with_native_engine_matches_vm() {
    let src = "int initf(Index ix) { return ix[0] * 7 % 13; }\n\
               int conv(int v, Index ix) { return v; }\n\
               void main() {\n\
                 array<int> a = array_create(1, {64,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                 int s = array_fold(conv, (+), a);\n\
                 if (procId == 0) { print(s); }\n\
               }";
    let path = write_temp("native_run.skil", src);
    let mut runs = Vec::new();
    for engine in ["vm", "native"] {
        let out = skilc()
            .arg("--run")
            .arg("--engine")
            .arg(engine)
            .arg("--mesh")
            .arg("2x2")
            .arg(&path)
            .output()
            .expect("run skilc");
        assert!(out.status.success(), "engine {engine}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        // printed values and the simulated-cycles summary must agree
        let cycles = stderr.split('(').nth(1).map(|s| s.to_string());
        runs.push((stdout, cycles));
    }
    assert_eq!(runs[0], runs[1], "vm vs native CLI output");
}

/// `procId - procId` defeats constant folding, so the division really
/// happens at run time under every engine and opt level.
const DIV_ZERO: &str = "void main() { int z = procId - procId; print(100 / z); }";

const OOB_INDEX: &str = "int initf(Index ix) { return 0; }\n\
                         void main() {\n\
                           array<int> a = array_create(1, {8,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                           int x = array_get_elem(a, {procId + 100, 0});\n\
                           print(x);\n\
                         }";

/// A Skil runtime error must surface as a structured diagnostic and
/// exit code 3 — not a raw Rust panic — under every engine.
#[test]
fn runtime_division_by_zero_is_structured_under_every_engine() {
    let path = write_temp("div_zero.skil", DIV_ZERO);
    for engine in ["ast", "vm", "native"] {
        let out = skilc()
            .arg("--run")
            .arg("--engine")
            .arg(engine)
            .arg(&path)
            .output()
            .expect("run skilc");
        assert_eq!(out.status.code(), Some(3), "engine {engine}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("skilc: simulation aborted"), "engine {engine}: {stderr}");
        assert!(stderr.contains("runtime error"), "engine {engine}: {stderr}");
        assert!(stderr.contains("integer division by zero"), "engine {engine}: {stderr}");
        assert!(!stderr.contains("panicked at"), "raw panic leaked ({engine}): {stderr}");
        assert!(!stderr.contains("RUST_BACKTRACE"), "raw panic leaked ({engine}): {stderr}");
    }
}

#[test]
fn runtime_out_of_bounds_index_is_structured_under_every_engine() {
    let path = write_temp("oob_index.skil", OOB_INDEX);
    for engine in ["ast", "vm", "native"] {
        let out = skilc()
            .arg("--run")
            .arg("--engine")
            .arg(engine)
            .arg(&path)
            .output()
            .expect("run skilc");
        assert_eq!(out.status.code(), Some(3), "engine {engine}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("runtime error"), "engine {engine}: {stderr}");
        assert!(
            stderr.contains("index [100, 0] outside array of size [8, 1]"),
            "engine {engine}: {stderr}"
        );
        assert!(!stderr.contains("panicked at"), "raw panic leaked ({engine}): {stderr}");
    }
}
