//! The native engine must degrade, never panic, on hosts without a
//! working `rustc`. `SKIL_NATIVE_RUSTC` pointed at a nonexistent
//! binary simulates such a host; both the library API and the `skilc`
//! driver must fall back to the VM with correct results.
//!
//! Both checks live in one `#[test]` because the library check mutates
//! process-global environment variables, which must not race a
//! parallel test thread.

use std::process::Command;

use skil_lang::{compile, Engine};
use skil_runtime::{Machine, MachineConfig};

// A program no other test compiles, so neither the in-process module
// registry nor a shared on-disk artifact cache can already hold it.
const PROGRAM: &str = "int initf(Index ix) { return ix[0] * 31 + 7; }\n\
                       int conv(int v, Index ix) { return v; }\n\
                       void main() {\n\
                         array<int> a = array_create(1, {48,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT);\n\
                         int s = array_fold(conv, (+), a);\n\
                         if (procId == 0) { print(s); }\n\
                       }";

#[test]
fn native_engine_falls_back_to_vm_when_rustc_is_unavailable() {
    let dir = std::env::temp_dir().join(format!("skil-no-rustc-{}", std::process::id()));

    // --- library API: Engine::Native silently degrades to the VM ---
    std::env::set_var("SKIL_NATIVE_RUSTC", "/nonexistent/rustc");
    std::env::set_var("SKIL_NATIVE_CACHE_DIR", &dir);
    let compiled = compile(PROGRAM).expect("program compiles");
    assert!(
        compiled.native_ready().is_err(),
        "a nonexistent rustc must make the native engine unavailable"
    );
    let machine = Machine::new(MachineConfig::square(2).unwrap());
    let native = compiled.run_with(Engine::Native, &machine);
    let vm = compiled.run_with(Engine::Vm, &machine);
    assert_eq!(native.results, vm.results, "fallback run must still be correct");
    assert_eq!(native.report.sim_cycles, vm.report.sim_cycles);
    std::env::remove_var("SKIL_NATIVE_RUSTC");
    std::env::remove_var("SKIL_NATIVE_CACHE_DIR");

    // --- skilc driver: warns on stderr, still runs, still exits 0 ---
    let src_path = dir.join("fallback.skil");
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(&src_path, PROGRAM).expect("write program");
    let out = Command::new(env!("CARGO_BIN_EXE_skilc"))
        .env("SKIL_NATIVE_RUSTC", "/nonexistent/rustc")
        .env("SKIL_NATIVE_CACHE_DIR", &dir)
        .arg("--run")
        .arg("--engine")
        .arg("native")
        .arg("--mesh")
        .arg("2x2")
        .arg(&src_path)
        .output()
        .expect("run skilc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fallback must not fail the run: {stderr}");
    assert!(!stderr.contains("panicked at"), "raw panic leaked: {stderr}");
    assert!(stderr.contains("falling back to vm"), "fallback must be reported: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[proc 0]"), "program output still produced: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
