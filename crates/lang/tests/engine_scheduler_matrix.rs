//! Engine × scheduler differential matrix on real Skil programs.
//!
//! The runtime's scheduler swap must be invisible through the whole
//! language stack: AST walker, bytecode VM, and the machine-code
//! native engine, on the event scheduler and the thread scheduler, at
//! any worker count, must print the same output and charge
//! bit-identical virtual time. These tests run the paper's
//! shortest-paths program through every cell of that matrix,
//! including a recoverable fault plan and a crash plan.

use skil_lang::{compile, Engine};
use skil_runtime::{FaultPlan, Machine, MachineConfig, Run, SchedulerKind};

const SHORTEST_PATHS: &str = include_str!("../../../examples/skil/shortest_paths.skil");

fn machine(kind: SchedulerKind, workers: Option<usize>, faults: Option<&FaultPlan>) -> Machine {
    let mut cfg = MachineConfig::mesh(4, 4).unwrap().with_scheduler(kind);
    if let Some(k) = workers {
        cfg = cfg.with_workers(k);
    }
    if let Some(f) = faults {
        cfg = cfg.with_faults(f.clone());
    }
    Machine::new(cfg)
}

fn cells(faults: Option<&FaultPlan>) -> Vec<(String, Engine, Machine)> {
    let mut out = Vec::new();
    for engine in [Engine::Ast, Engine::Vm, Engine::Native] {
        for kind in [SchedulerKind::Event, SchedulerKind::Threads] {
            for workers in [None, Some(1)] {
                out.push((
                    format!("{engine:?}/{kind:?}/workers={workers:?}"),
                    engine,
                    machine(kind, workers, faults),
                ));
            }
        }
    }
    out
}

fn assert_identical(label: &str, a: &Run<Vec<String>>, b: &Run<Vec<String>>) {
    assert_eq!(a.results, b.results, "{label}: printed output diverged");
    assert_eq!(a.report.sim_cycles, b.report.sim_cycles, "{label}: sim_cycles diverged");
    for (i, (pa, pb)) in a.report.procs.iter().zip(&b.report.procs).enumerate() {
        assert_eq!(pa.finished_at, pb.finished_at, "{label}: proc {i} finished_at");
        assert_eq!(pa.stats, pb.stats, "{label}: proc {i} stats");
    }
}

#[test]
fn engine_scheduler_matrix_fault_free() {
    let compiled = compile(SHORTEST_PATHS).expect("shortest_paths.skil compiles");
    let cells = cells(None);
    let (_, engine, m) = &cells[0];
    let base = compiled.run_with(*engine, m);
    assert!(!base.results[0].is_empty(), "proc 0 must print the fold total");
    for (label, engine, m) in &cells[1..] {
        assert_identical(label, &compiled.run_with(*engine, m), &base);
    }
}

#[test]
fn engine_scheduler_matrix_recoverable_fault_plan() {
    // Drops, duplicates, and delays the reliable layer masks: every
    // engine × scheduler cell must agree on output, clocks, and the
    // fault counters themselves.
    let compiled = compile(SHORTEST_PATHS).expect("shortest_paths.skil compiles");
    let faults = FaultPlan::seeded(11).with_drop(0.2).with_dup(0.2).with_delay(0.2, 20_000);
    let cells = cells(Some(&faults));
    let (_, engine, m) = &cells[0];
    let base = compiled.run_with(*engine, m);
    let fault_events: u64 = base.report.procs.iter().map(|p| p.stats.fault_events()).sum();
    assert!(fault_events > 0, "the plan must actually inject faults");
    for (label, engine, m) in &cells[1..] {
        assert_identical(label, &compiled.run_with(*engine, m), &base);
    }
}

#[test]
fn engine_scheduler_matrix_crash_plan() {
    // A processor dies mid-run; the structured failure (which procs
    // aborted, with what causes) must be identical in every cell.
    let compiled = compile(SHORTEST_PATHS).expect("shortest_paths.skil compiles");
    let faults = FaultPlan::seeded(5).with_crash(3, 400);
    let failures: Vec<(String, Vec<(usize, skil_runtime::AbortCause)>)> = cells(Some(&faults))
        .iter()
        .map(|(label, engine, m)| {
            let failure =
                compiled.try_run_with(*engine, m).expect_err("the crash plan must fail the run");
            (label.clone(), failure.aborts.iter().map(|a| (a.proc, a.cause.clone())).collect())
        })
        .collect();
    let (_, base) = &failures[0];
    assert!(base.iter().any(|(p, _)| *p == 3), "proc 3 must be in the cascade: {base:?}");
    for (label, aborts) in &failures[1..] {
        assert_eq!(aborts, base, "{label}: fault cascade diverged");
    }
}
