//! # skil-runtime
//!
//! A deterministic **virtual-time simulator** of the distributed-memory
//! MIMD machine the Skil paper evaluates on: a Parsytec MC — 64 T800
//! transputers at 20 MHz on a 2-D mesh, running the Parix OS.
//!
//! SPMD programs run as real Rust closures, one host thread per simulated
//! processor. Each processor carries a virtual cycle clock; computation
//! advances it via [`Proc::charge`], and messages carry arrival
//! timestamps computed from a calibrated LogP-style link model
//! ([`CostModel`]). `recv` raises the receiver's clock to the arrival
//! time, so the maximum clock at program exit is the simulated parallel
//! run time — deterministically, regardless of host scheduling or core
//! count.
//!
//! The crate provides:
//!
//! * [`Machine`] / [`MachineConfig`] — build and run simulations;
//! * [`Proc`] — the per-processor handle: `send`/`send_sync`/`recv`,
//!   collectives (broadcast, reduce, allreduce, gather, barrier);
//! * [`Wire`] — the flatten/unflatten contract for data that crosses
//!   processors (the paper's "flattening" of dynamic data);
//! * [`topology`] — the physical mesh plus ring/torus virtual topologies
//!   with realistic embedding costs, and the binomial collective tree;
//! * [`CostModel`] — per-operation cycle charges calibrated against the
//!   paper's Tables 1 and 2 (see `DESIGN.md` / `EXPERIMENTS.md`);
//! * [`export`] — observability exports of a [`RunReport`]: a metrics
//!   JSON (per-skeleton cycles/messages/bytes plus the src→dst
//!   communication matrix) and a Chrome `trace_events` JSON of the
//!   traced spans (see `DESIGN.md` §9).

#![warn(missing_docs)]

pub mod collective;
pub(crate) mod coro;
pub mod cost;
pub mod error;
pub mod export;
pub mod fault;
pub mod machine;
pub mod mailbox;
pub mod proc;
pub mod report;
pub(crate) mod sched;
pub mod topology;
pub mod wire;

pub use collective::{
    estimate_allgather, estimate_allreduce, select_allgather, select_allreduce, CollectiveAlgo,
};
pub use cost::CostModel;
pub use error::{
    runtime_error_message, AbortCause, RtError, SimAbort, SimFailure, WireError, RT_ERROR_PREFIX,
};
pub use fault::{Fate, FaultPlan};
pub use machine::{Machine, MachineConfig, Run, SchedulerKind};
pub use proc::{Proc, SpanStart};
pub use report::{
    CommMatrix, CommRow, ProcReport, ProcStats, RunReport, SkeletonMetrics, TraceEvent, TraceKind,
};
pub use topology::{BinomialTree, Distr, Mesh, Ring, Topology, Torus2d};
pub use wire::{Wire, WireReader};
