//! Physical and virtual topologies.
//!
//! The simulated machine is a 2-D mesh of processors (the Parsytec MC's
//! physical interconnect). Parix offers *virtual topologies* — ring and
//! 2-D torus — that the paper's skeletons request through the `distr`
//! argument of `array_create` (`DISTR_DEFAULT`, `DISTR_RING`,
//! `DISTR_TORUS2D`). A virtual topology embeds its wrap-around links into
//! the mesh with dilation ≤ 2 (the classic folded embedding), so every
//! virtual neighbour is at most two physical hops away. Code that does
//! *not* use virtual topologies (the paper's older C comparator) pays the
//! full mesh distance for wrap-around traffic instead.

use crate::error::RtError;

/// Which virtual (software) topology a distributed structure is mapped
/// onto. Mirrors the paper's `DISTR_*` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distr {
    /// Map directly onto the hardware topology (the 2-D mesh).
    Default,
    /// Ring virtual topology.
    Ring,
    /// 2-D torus virtual topology.
    Torus2d,
}

/// The physical 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    /// Number of mesh rows.
    pub rows: usize,
    /// Number of mesh columns.
    pub cols: usize,
}

impl Mesh {
    /// Build a mesh; `rows * cols` is the processor count.
    pub fn new(rows: usize, cols: usize) -> Result<Self, RtError> {
        if rows == 0 || cols == 0 {
            return Err(RtError::BadConfig(format!("degenerate mesh {rows}x{cols}")));
        }
        Ok(Mesh { rows, cols })
    }

    /// The most nearly square factorization of `n`, preferring more rows
    /// (an `8x4` mesh for 32 processors, as in the paper's Table 2).
    pub fn near_square(n: usize) -> Result<Self, RtError> {
        if n == 0 {
            return Err(RtError::BadConfig("zero processors".into()));
        }
        let mut best = (n, 1);
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                best = (n / d, d);
            }
            d += 1;
        }
        Mesh::new(best.0, best.1)
    }

    /// Total processor count.
    pub fn procs(&self) -> usize {
        self.rows * self.cols
    }

    /// Row-major coordinates of processor `id`.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.procs());
        (id / self.cols, id % self.cols)
    }

    /// Processor id at `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Manhattan hop distance between two processors on the mesh.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

/// The physical interconnect of the simulated machine.
///
/// The paper's machine is a 2-D mesh; the zoo adds a hypercube, a
/// `k`-ary fat tree, and a heterogeneous mesh with a slow vertical cut.
/// Every variant exposes the same two facts the rest of the simulator
/// needs: the processor count and a **weighted hop metric** per
/// `src → dst` pair. The hop metric is the *only* topology-dependent
/// input to message cost ([`CostModel::transit`](crate::CostModel)
/// charges `per_hop * hops`), so `Topology::Mesh2d` reproduces the
/// seed simulator bit for bit.
///
/// Processor ids stay row-major over a logical process grid
/// ([`Topology::grid`]) regardless of the physical wiring — arrays are
/// laid out on the grid, the interconnect only prices the messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The paper's 2-D mesh (Manhattan hop metric). The default.
    Mesh2d(Mesh),
    /// A `dims`-dimensional hypercube of `2^dims` processors; the hop
    /// metric is the Hamming distance between ids.
    Hypercube {
        /// log2 of the processor count.
        dims: u32,
    },
    /// A fat tree with `levels` switch levels of down-arity `arity`;
    /// `arity^levels` leaves (processors). Leaves whose base-`arity`
    /// ids share a longer prefix meet at a lower switch: the hop metric
    /// is `2 * (levels - common prefix length)` (up to the meeting
    /// switch and back down).
    FatTree {
        /// Number of switch levels above the leaves.
        levels: u32,
        /// Down-links per switch.
        arity: usize,
    },
    /// A 2-D mesh whose links crossing the vertical cut left of column
    /// `cut_col` are `factor`× slower: each crossing counts as `factor`
    /// hops instead of 1 (think one oversubscribed cable tray between
    /// two halves of the machine room).
    Hetero {
        /// The underlying mesh.
        mesh: Mesh,
        /// Links between columns `cut_col - 1` and `cut_col` are slow.
        cut_col: usize,
        /// Weight of one slow-link crossing, in ordinary hops.
        factor: usize,
    },
}

impl Topology {
    /// The default physical topology for `n` processors: the most
    /// nearly square 2-D mesh, exactly as the seed simulator built it.
    pub fn default_for(n: usize) -> Result<Self, RtError> {
        Ok(Topology::Mesh2d(Mesh::near_square(n)?))
    }

    /// Parse a `--topology` spec:
    ///
    /// * `mesh2d:RxC`
    /// * `hypercube:N` (N a power of two)
    /// * `fattree:L,A` (L switch levels, down-arity A ⇒ `A^L` procs)
    /// * `hetero:mesh2d:RxC:slowlinks=colK*F` (crossing the vertical
    ///   cut left of column K costs F hops)
    pub fn parse(spec: &str) -> Result<Self, RtError> {
        let bad = |msg: String| RtError::BadConfig(format!("topology `{spec}`: {msg}"));
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        match kind {
            "mesh2d" => {
                let (r, c) = parse_mesh_shape(rest).map_err(&bad)?;
                Ok(Topology::Mesh2d(Mesh::new(r, c)?))
            }
            "hypercube" => {
                let n: usize =
                    rest.parse().map_err(|_| bad(format!("bad processor count `{rest}`")))?;
                if n == 0 || !n.is_power_of_two() {
                    return Err(bad(format!("{n} processors is not a power of two")));
                }
                Ok(Topology::Hypercube { dims: n.trailing_zeros() })
            }
            "fattree" => {
                let (l, a) = rest
                    .split_once(',')
                    .ok_or_else(|| bad("expected `fattree:LEVELS,ARITY`".into()))?;
                let levels: u32 =
                    l.trim().parse().map_err(|_| bad(format!("bad level count `{l}`")))?;
                let arity: usize = a.trim().parse().map_err(|_| bad(format!("bad arity `{a}`")))?;
                if levels == 0 || arity < 2 {
                    return Err(bad("need >= 1 level and arity >= 2".into()));
                }
                let leaves = arity
                    .checked_pow(levels)
                    .filter(|&n| n <= 1 << 20)
                    .ok_or_else(|| bad("fat tree too large".into()))?;
                let _ = leaves;
                Ok(Topology::FatTree { levels, arity })
            }
            "hetero" => {
                // hetero:mesh2d:RxC:slowlinks=colK*F
                let mut parts = rest.splitn(3, ':');
                let base = parts.next().unwrap_or("");
                if base != "mesh2d" {
                    return Err(bad(format!("unknown hetero base `{base}` (want mesh2d)")));
                }
                let shape = parts.next().ok_or_else(|| bad("missing mesh shape".into()))?;
                let (r, c) = parse_mesh_shape(shape).map_err(&bad)?;
                let slow = parts.next().ok_or_else(|| bad("missing slowlinks=...".into()))?;
                let slow = slow
                    .strip_prefix("slowlinks=col")
                    .ok_or_else(|| bad("expected `slowlinks=colK*F`".into()))?;
                let (k, f) = slow
                    .split_once('*')
                    .ok_or_else(|| bad("expected `slowlinks=colK*F`".into()))?;
                let cut_col: usize = k.parse().map_err(|_| bad(format!("bad cut column `{k}`")))?;
                let factor: usize = f.parse().map_err(|_| bad(format!("bad slow factor `{f}`")))?;
                if cut_col == 0 || cut_col >= c {
                    return Err(bad(format!("cut column {cut_col} outside 1..{c}")));
                }
                if factor < 1 {
                    return Err(bad("slow factor must be >= 1".into()));
                }
                Ok(Topology::Hetero { mesh: Mesh::new(r, c)?, cut_col, factor })
            }
            other => Err(bad(format!(
                "unknown kind `{other}` (want mesh2d | hypercube | fattree | hetero)"
            ))),
        }
    }

    /// Total processor count.
    pub fn procs(&self) -> usize {
        match *self {
            Topology::Mesh2d(m) => m.procs(),
            Topology::Hypercube { dims } => 1usize << dims,
            Topology::FatTree { levels, arity } => arity.pow(levels),
            Topology::Hetero { mesh, .. } => mesh.procs(),
        }
    }

    /// The logical process grid arrays are laid out on. For mesh-backed
    /// topologies this is the mesh itself; for the others, the most
    /// nearly square factorization of the processor count.
    pub fn grid(&self) -> Mesh {
        match *self {
            Topology::Mesh2d(m) => m,
            Topology::Hetero { mesh, .. } => mesh,
            _ => Mesh::near_square(self.procs()).expect("non-zero processor count"),
        }
    }

    /// Weighted hop distance from `a` to `b` — the number the cost
    /// model multiplies by `per_hop` (and raw links store-and-forward
    /// through). Symmetric; zero iff `a == b`.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        match *self {
            Topology::Mesh2d(m) => m.hops(a, b),
            Topology::Hypercube { .. } => (a ^ b).count_ones() as usize,
            Topology::FatTree { levels, arity } => {
                if a == b {
                    return 0;
                }
                // Climb both leaves until they land under the same
                // switch; each level climbed is one up-hop + one
                // down-hop on the way back.
                let (mut x, mut y, mut up) = (a, b, 0usize);
                while x != y {
                    x /= arity;
                    y /= arity;
                    up += 1;
                }
                debug_assert!(up as u32 <= levels);
                2 * up
            }
            Topology::Hetero { mesh, cut_col, factor } => {
                let base = mesh.hops(a, b);
                let (_, ac) = mesh.coords(a);
                let (_, bc) = mesh.coords(b);
                // A Manhattan route crosses the vertical cut exactly
                // once iff the endpoints lie on opposite sides.
                let crosses = (ac < cut_col) != (bc < cut_col);
                base + if crosses { factor - 1 } else { 0 }
            }
        }
    }

    /// The largest hop distance between any two processors.
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Mesh2d(m) => m.rows - 1 + m.cols - 1,
            Topology::Hypercube { dims } => dims as usize,
            Topology::FatTree { levels, .. } => 2 * levels as usize,
            Topology::Hetero { mesh, factor, .. } => {
                mesh.rows - 1 + mesh.cols - 1 + factor.saturating_sub(1)
            }
        }
    }

    /// The physical neighbours of `id`, ascending: mesh/hetero N-E-S-W
    /// links, hypercube bit flips, fat-tree leaves under the same
    /// bottom switch. This is what `neighbor_exchange` exchanges with.
    pub fn neighbors(&self, id: usize) -> Vec<usize> {
        let mut out = match *self {
            Topology::Mesh2d(m) | Topology::Hetero { mesh: m, .. } => {
                let (r, c) = m.coords(id);
                let mut v = Vec::with_capacity(4);
                if r > 0 {
                    v.push(m.id(r - 1, c));
                }
                if r + 1 < m.rows {
                    v.push(m.id(r + 1, c));
                }
                if c > 0 {
                    v.push(m.id(r, c - 1));
                }
                if c + 1 < m.cols {
                    v.push(m.id(r, c + 1));
                }
                v
            }
            Topology::Hypercube { dims } => (0..dims).map(|d| id ^ (1usize << d)).collect(),
            Topology::FatTree { arity, .. } => {
                let base = id - id % arity;
                (base..base + arity).filter(|&p| p != id).collect()
            }
        };
        out.sort_unstable();
        out
    }

    /// The canonical spec string (`parse` round-trips it).
    pub fn spec(&self) -> String {
        match *self {
            Topology::Mesh2d(m) => format!("mesh2d:{}x{}", m.rows, m.cols),
            Topology::Hypercube { dims } => format!("hypercube:{}", 1usize << dims),
            Topology::FatTree { levels, arity } => format!("fattree:{levels},{arity}"),
            Topology::Hetero { mesh, cut_col, factor } => {
                format!("hetero:mesh2d:{}x{}:slowlinks=col{cut_col}*{factor}", mesh.rows, mesh.cols)
            }
        }
    }

    /// Short kind name (`mesh2d`, `hypercube`, `fattree`, `hetero`).
    pub fn kind(&self) -> &'static str {
        match self {
            Topology::Mesh2d(_) => "mesh2d",
            Topology::Hypercube { .. } => "hypercube",
            Topology::FatTree { .. } => "fattree",
            Topology::Hetero { .. } => "hetero",
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

fn parse_mesh_shape(s: &str) -> Result<(usize, usize), String> {
    let (r, c) = s.split_once('x').ok_or_else(|| format!("bad mesh shape `{s}` (want RxC)"))?;
    let rows = r.trim().parse().map_err(|_| format!("bad row count `{r}`"))?;
    let cols = c.trim().parse().map_err(|_| format!("bad column count `{c}`"))?;
    Ok((rows, cols))
}

/// A ring over all processors of the machine.
///
/// With `virtual_links` (Parix virtual topologies) every ring step costs
/// at most 2 physical hops; without, the wrap edge from the last processor
/// back to the first costs the full mesh distance.
#[derive(Debug, Clone, Copy)]
pub struct Ring {
    topo: Topology,
    virtual_links: bool,
}

impl Ring {
    /// Build the ring view of a mesh.
    pub fn new(mesh: Mesh, virtual_links: bool) -> Self {
        Ring { topo: Topology::Mesh2d(mesh), virtual_links }
    }

    /// Build the ring view of an arbitrary physical topology, so ring
    /// steps are priced by that topology's hop metric instead of
    /// assuming a mesh.
    pub fn on(topo: Topology, virtual_links: bool) -> Self {
        Ring { topo, virtual_links }
    }

    /// Ring size.
    pub fn len(&self) -> usize {
        self.topo.procs()
    }

    /// Whether the ring is empty (never true for a valid mesh).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successor of `id` on the ring and the hop cost of that link.
    pub fn next(&self, id: usize) -> (usize, usize) {
        let n = self.len();
        let nxt = (id + 1) % n;
        (nxt, self.link_hops(id, nxt))
    }

    /// Predecessor of `id` on the ring and the hop cost of that link.
    pub fn prev(&self, id: usize) -> (usize, usize) {
        let n = self.len();
        let prv = (id + n - 1) % n;
        (prv, self.link_hops(id, prv))
    }

    fn link_hops(&self, a: usize, b: usize) -> usize {
        if self.virtual_links {
            // Folded/snake embedding: a Hamiltonian ring on a mesh has
            // dilation <= 2 everywhere.
            self.topo.hops(a, b).clamp(1, 2)
        } else {
            self.topo.hops(a, b)
        }
    }
}

/// A 2-D torus over a `rows x cols` process grid.
#[derive(Debug, Clone, Copy)]
pub struct Torus2d {
    /// The process-grid shape (usually equal to the physical mesh).
    pub grid: Mesh,
    virtual_links: bool,
    topo: Topology,
}

impl Torus2d {
    /// View the machine's mesh as a torus of the same shape.
    pub fn new(mesh: Mesh, virtual_links: bool) -> Self {
        Torus2d { grid: mesh, virtual_links, topo: Topology::Mesh2d(mesh) }
    }

    /// View an arbitrary physical topology as a torus over its logical
    /// process grid; steps are priced by the topology's hop metric.
    pub fn on(topo: Topology, virtual_links: bool) -> Self {
        Torus2d { grid: topo.grid(), virtual_links, topo }
    }

    /// Grid coordinates of a processor.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        self.grid.coords(id)
    }

    /// Processor at torus coordinates (wrapped).
    pub fn at(&self, row: isize, col: isize) -> usize {
        let r = row.rem_euclid(self.grid.rows as isize) as usize;
        let c = col.rem_euclid(self.grid.cols as isize) as usize;
        self.grid.id(r, c)
    }

    /// Neighbour one step in the given direction, with its hop cost.
    pub fn step(&self, id: usize, drow: isize, dcol: isize) -> (usize, usize) {
        let (r, c) = self.coords(id);
        let dst = self.at(r as isize + drow, c as isize + dcol);
        let hops = if self.virtual_links {
            // Folded torus embedding: dilation 2.
            self.topo.hops(id, dst).clamp(1, 2)
        } else {
            self.topo.hops(id, dst)
        };
        (dst, hops)
    }

    /// West neighbour (wrap) and hop cost.
    pub fn west(&self, id: usize) -> (usize, usize) {
        self.step(id, 0, -1)
    }

    /// East neighbour (wrap) and hop cost.
    pub fn east(&self, id: usize) -> (usize, usize) {
        self.step(id, 0, 1)
    }

    /// North neighbour (wrap) and hop cost.
    pub fn north(&self, id: usize) -> (usize, usize) {
        self.step(id, -1, 0)
    }

    /// South neighbour (wrap) and hop cost.
    pub fn south(&self, id: usize) -> (usize, usize) {
        self.step(id, 1, 0)
    }
}

/// The binomial reduction/broadcast tree the collectives use.
///
/// Processors are renumbered relative to `root`; in round `r` (counting
/// from 0) processor `x` with lowest set bit `2^r` exchanges with
/// `x - 2^r`. This yields `ceil(log2 p)` rounds, matching the paper's
/// "virtual tree topology" for `array_fold` and broadcasts.
#[derive(Debug, Clone, Copy)]
pub struct BinomialTree {
    n: usize,
    root: usize,
}

impl BinomialTree {
    /// Tree over `n` processors rooted at `root`.
    pub fn new(n: usize, root: usize) -> Self {
        debug_assert!(root < n);
        BinomialTree { n, root }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        let mut r = 0;
        while (1usize << r) < self.n {
            r += 1;
        }
        r
    }

    fn rel(&self, id: usize) -> usize {
        (id + self.n - self.root) % self.n
    }

    fn abs(&self, rel: usize) -> usize {
        (rel + self.root) % self.n
    }

    /// The parent of `id` in the tree, or `None` for the root.
    pub fn parent(&self, id: usize) -> Option<usize> {
        let x = self.rel(id);
        if x == 0 {
            return None;
        }
        let low = x & x.wrapping_neg();
        Some(self.abs(x - low))
    }

    /// Children of `id`, in the round order a broadcast visits them.
    pub fn children(&self, id: usize) -> Vec<usize> {
        let x = self.rel(id);
        let mut out = Vec::new();
        let mut bit = 1usize;
        // A node may only have children at bits above its own lowest set
        // bit (or all bits for the root).
        let limit = if x == 0 { self.n } else { x & x.wrapping_neg() };
        while bit < limit && x + bit < self.n {
            out.push(self.abs(x + bit));
            bit <<= 1;
        }
        out
    }

    /// The round in which `id` receives during a broadcast from the root
    /// (the position of its lowest set bit), or `None` for the root.
    pub fn recv_round(&self, id: usize) -> Option<usize> {
        let x = self.rel(id);
        if x == 0 {
            None
        } else {
            Some(x.trailing_zeros() as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let m = Mesh::new(3, 4).unwrap();
        for id in 0..12 {
            let (r, c) = m.coords(id);
            assert_eq!(m.id(r, c), id);
        }
    }

    #[test]
    fn mesh_rejects_degenerate() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(Mesh::near_square(64).unwrap(), Mesh { rows: 8, cols: 8 });
        assert_eq!(Mesh::near_square(32).unwrap(), Mesh { rows: 8, cols: 4 });
        assert_eq!(Mesh::near_square(16).unwrap(), Mesh { rows: 4, cols: 4 });
        assert_eq!(Mesh::near_square(7).unwrap(), Mesh { rows: 7, cols: 1 });
        assert_eq!(Mesh::near_square(1).unwrap(), Mesh { rows: 1, cols: 1 });
        assert!(Mesh::near_square(0).is_err());
    }

    #[test]
    fn mesh_hops_manhattan() {
        let m = Mesh::new(4, 4).unwrap();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn ring_wrap_costs() {
        let m = Mesh::new(2, 4).unwrap();
        let rv = Ring::new(m, true);
        let rp = Ring::new(m, false);
        // internal step
        assert_eq!(rv.next(0).0, 1);
        assert!(rv.next(0).1 <= 2);
        // wrap edge: 7 -> 0. Mesh distance from (1,3) to (0,0) is 4.
        assert_eq!(rp.next(7), (0, 4));
        assert_eq!(rv.next(7).0, 0);
        assert!(rv.next(7).1 <= 2);
        // prev is the inverse of next
        let (nxt, _) = rv.next(3);
        assert_eq!(rv.prev(nxt).0, 3);
    }

    #[test]
    fn torus_neighbours_wrap() {
        let m = Mesh::new(4, 4).unwrap();
        let t = Torus2d::new(m, true);
        assert_eq!(t.west(0).0, 3);
        assert_eq!(t.east(3).0, 0);
        assert_eq!(t.north(0).0, 12);
        assert_eq!(t.south(12).0, 0);
        // interior neighbours cost 1 hop
        assert_eq!(t.east(5), (6, 1));
        // virtual wrap costs at most 2 hops
        assert!(t.west(0).1 <= 2);
        // non-virtual wrap costs the full mesh distance
        let tp = Torus2d::new(m, false);
        assert_eq!(tp.west(0), (3, 3));
        assert_eq!(tp.north(0), (12, 3));
    }

    #[test]
    fn torus_at_wraps_negative() {
        let m = Mesh::new(4, 4).unwrap();
        let t = Torus2d::new(m, true);
        assert_eq!(t.at(-1, -1), 15);
        assert_eq!(t.at(4, 4), 0);
    }

    #[test]
    fn binomial_tree_structure() {
        let t = BinomialTree::new(8, 0);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(5), Some(4));
        assert_eq!(t.parent(6), Some(4));
        assert_eq!(t.parent(7), Some(6));
        assert_eq!(t.children(0), vec![1, 2, 4]);
        assert_eq!(t.children(4), vec![5, 6]);
        assert_eq!(t.children(7), Vec::<usize>::new());
    }

    #[test]
    fn binomial_tree_rooted_elsewhere() {
        let t = BinomialTree::new(8, 3);
        assert_eq!(t.parent(3), None);
        // every non-root eventually reaches the root
        for id in 0..8 {
            let mut cur = id;
            let mut steps = 0;
            while let Some(p) = t.parent(cur) {
                cur = p;
                steps += 1;
                assert!(steps <= 8, "parent chain does not terminate");
            }
            assert_eq!(cur, 3);
        }
    }

    #[test]
    fn binomial_tree_children_parents_consistent() {
        for n in [1usize, 2, 3, 5, 7, 8, 13, 16, 64] {
            for root in [0, n / 2, n - 1] {
                let t = BinomialTree::new(n, root);
                let mut seen = vec![false; n];
                seen[root] = true;
                for id in 0..n {
                    for ch in t.children(id) {
                        assert_eq!(t.parent(ch), Some(id));
                        assert!(!seen[ch], "child visited twice");
                        seen[ch] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "tree spans all nodes (n={n})");
            }
        }
    }

    #[test]
    fn binomial_nonpower_of_two() {
        let t = BinomialTree::new(6, 0);
        assert_eq!(t.rounds(), 3);
        let mut total = 0;
        for id in 0..6 {
            total += t.children(id).len();
        }
        assert_eq!(total, 5, "5 edges span 6 nodes");
    }

    #[test]
    fn topology_parse_roundtrips() {
        for spec in [
            "mesh2d:4x4",
            "mesh2d:8x4",
            "hypercube:16",
            "hypercube:2",
            "fattree:2,4",
            "fattree:3,2",
            "hetero:mesh2d:4x4:slowlinks=col2*8",
        ] {
            let t = Topology::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(t.spec(), spec);
            assert_eq!(Topology::parse(&t.spec()).unwrap(), t);
        }
    }

    #[test]
    fn topology_parse_rejects_malformed() {
        for spec in [
            "mesh2d:0x4",
            "mesh2d:4",
            "hypercube:12",
            "hypercube:0",
            "fattree:2",
            "fattree:0,4",
            "fattree:2,1",
            "hetero:mesh2d:4x4",
            "hetero:mesh2d:4x4:slowlinks=col0*8",
            "hetero:mesh2d:4x4:slowlinks=col4*8",
            "hetero:ring:4x4:slowlinks=col2*8",
            "dragonfly:16",
        ] {
            assert!(Topology::parse(spec).is_err(), "{spec} should be rejected");
        }
    }

    #[test]
    fn mesh2d_topology_matches_mesh_exactly() {
        let m = Mesh::new(4, 4).unwrap();
        let t = Topology::Mesh2d(m);
        assert_eq!(t.procs(), 16);
        assert_eq!(t.grid(), m);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.hops(a, b), m.hops(a, b));
            }
        }
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn hypercube_hops_are_hamming() {
        let t = Topology::parse("hypercube:16").unwrap();
        assert_eq!(t.procs(), 16);
        // corner routes: opposite corners differ in every bit
        assert_eq!(t.hops(0, 15), 4);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(5, 10), 4); // 0101 vs 1010
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.diameter(), 4);
        // the grid is the near-square factorization
        assert_eq!(t.grid(), Mesh { rows: 4, cols: 4 });
        // every id has exactly `dims` neighbours, one per flipped bit
        assert_eq!(t.neighbors(0), vec![1, 2, 4, 8]);
        assert_eq!(t.neighbors(15), vec![7, 11, 13, 14]);
    }

    #[test]
    fn fattree_hops_climb_to_common_switch() {
        let t = Topology::parse("fattree:2,4").unwrap();
        assert_eq!(t.procs(), 16);
        // same bottom switch: up one level and back down
        assert_eq!(t.hops(0, 1), 2);
        assert_eq!(t.hops(0, 3), 2);
        // different bottom switch: through the root
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(0, 15), 4); // corner route
        assert_eq!(t.hops(3, 12), 4);
        assert_eq!(t.hops(7, 7), 0);
        assert_eq!(t.diameter(), 4);
        // deep binary fat tree corner route
        let d = Topology::parse("fattree:3,2").unwrap();
        assert_eq!(d.procs(), 8);
        assert_eq!(d.hops(0, 1), 2);
        assert_eq!(d.hops(0, 7), 6);
        assert_eq!(d.hops(3, 4), 6);
        // leaf-switch siblings are the neighbourhood
        assert_eq!(t.neighbors(5), vec![4, 6, 7]);
        assert_eq!(d.neighbors(6), vec![7]);
    }

    #[test]
    fn hetero_cut_weights_crossings() {
        let t = Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*8").unwrap();
        let m = Mesh::new(4, 4).unwrap();
        assert_eq!(t.procs(), 16);
        assert_eq!(t.grid(), m);
        // same side of the cut: plain Manhattan
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(2, 3), 1);
        // one crossing: the slow link counts as `factor` hops
        assert_eq!(t.hops(1, 2), 1 + 7);
        assert_eq!(t.hops(0, 15), 6 + 7);
        // symmetric
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
        assert_eq!(t.diameter(), 6 + 7);
        // factor 1 degenerates to the plain mesh
        let flat = Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*1").unwrap();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(flat.hops(a, b), m.hops(a, b));
            }
        }
    }

    #[test]
    fn topology_hops_symmetric_zero_diagonal() {
        for spec in
            ["mesh2d:3x5", "hypercube:8", "fattree:2,3", "hetero:mesh2d:3x5:slowlinks=col3*4"]
        {
            let t = Topology::parse(spec).unwrap();
            let n = t.procs();
            let d = t.diameter();
            for a in 0..n {
                assert_eq!(t.hops(a, a), 0, "{spec}");
                for b in 0..n {
                    assert_eq!(t.hops(a, b), t.hops(b, a), "{spec}");
                    assert!(t.hops(a, b) <= d, "{spec}: hops({a},{b}) > diameter");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_mutual_and_sorted() {
        for spec in
            ["mesh2d:3x4", "hypercube:16", "fattree:2,4", "hetero:mesh2d:4x4:slowlinks=col2*8"]
        {
            let t = Topology::parse(spec).unwrap();
            for id in 0..t.procs() {
                let ns = t.neighbors(id);
                let mut sorted = ns.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(ns, sorted, "{spec}: neighbours of {id} sorted+unique");
                for nb in ns {
                    assert_ne!(nb, id);
                    assert!(t.neighbors(nb).contains(&id), "{spec}: {id}<->{nb} mutual");
                }
            }
        }
    }

    #[test]
    fn ring_on_topology_prices_links_by_metric() {
        let hc = Topology::parse("hypercube:8").unwrap();
        let r = Ring::on(hc, false);
        // 3 -> 4 flips every bit of a 3-cube
        assert_eq!(r.next(3), (4, 3));
        // virtual links still clamp to the folded embedding
        let rv = Ring::on(hc, true);
        assert!(rv.next(3).1 <= 2);
        let het = Topology::parse("hetero:mesh2d:2x4:slowlinks=col2*8").unwrap();
        let rh = Ring::on(het, false);
        assert_eq!(rh.next(1), (2, 8)); // crosses the slow cut
    }

    #[test]
    fn recv_round_matches_bit() {
        let t = BinomialTree::new(16, 0);
        assert_eq!(t.recv_round(0), None);
        assert_eq!(t.recv_round(1), Some(0));
        assert_eq!(t.recv_round(2), Some(1));
        assert_eq!(t.recv_round(12), Some(2));
        assert_eq!(t.recv_round(8), Some(3));
    }
}
