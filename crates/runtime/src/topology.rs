//! Physical and virtual topologies.
//!
//! The simulated machine is a 2-D mesh of processors (the Parsytec MC's
//! physical interconnect). Parix offers *virtual topologies* — ring and
//! 2-D torus — that the paper's skeletons request through the `distr`
//! argument of `array_create` (`DISTR_DEFAULT`, `DISTR_RING`,
//! `DISTR_TORUS2D`). A virtual topology embeds its wrap-around links into
//! the mesh with dilation ≤ 2 (the classic folded embedding), so every
//! virtual neighbour is at most two physical hops away. Code that does
//! *not* use virtual topologies (the paper's older C comparator) pays the
//! full mesh distance for wrap-around traffic instead.

use crate::error::RtError;

/// Which virtual (software) topology a distributed structure is mapped
/// onto. Mirrors the paper's `DISTR_*` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distr {
    /// Map directly onto the hardware topology (the 2-D mesh).
    Default,
    /// Ring virtual topology.
    Ring,
    /// 2-D torus virtual topology.
    Torus2d,
}

/// The physical 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Number of mesh rows.
    pub rows: usize,
    /// Number of mesh columns.
    pub cols: usize,
}

impl Mesh {
    /// Build a mesh; `rows * cols` is the processor count.
    pub fn new(rows: usize, cols: usize) -> Result<Self, RtError> {
        if rows == 0 || cols == 0 {
            return Err(RtError::BadConfig(format!("degenerate mesh {rows}x{cols}")));
        }
        Ok(Mesh { rows, cols })
    }

    /// The most nearly square factorization of `n`, preferring more rows
    /// (an `8x4` mesh for 32 processors, as in the paper's Table 2).
    pub fn near_square(n: usize) -> Result<Self, RtError> {
        if n == 0 {
            return Err(RtError::BadConfig("zero processors".into()));
        }
        let mut best = (n, 1);
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                best = (n / d, d);
            }
            d += 1;
        }
        Mesh::new(best.0, best.1)
    }

    /// Total processor count.
    pub fn procs(&self) -> usize {
        self.rows * self.cols
    }

    /// Row-major coordinates of processor `id`.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.procs());
        (id / self.cols, id % self.cols)
    }

    /// Processor id at `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Manhattan hop distance between two processors on the mesh.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

/// A ring over all processors of the machine.
///
/// With `virtual_links` (Parix virtual topologies) every ring step costs
/// at most 2 physical hops; without, the wrap edge from the last processor
/// back to the first costs the full mesh distance.
#[derive(Debug, Clone, Copy)]
pub struct Ring {
    mesh: Mesh,
    virtual_links: bool,
}

impl Ring {
    /// Build the ring view of a mesh.
    pub fn new(mesh: Mesh, virtual_links: bool) -> Self {
        Ring { mesh, virtual_links }
    }

    /// Ring size.
    pub fn len(&self) -> usize {
        self.mesh.procs()
    }

    /// Whether the ring is empty (never true for a valid mesh).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successor of `id` on the ring and the hop cost of that link.
    pub fn next(&self, id: usize) -> (usize, usize) {
        let n = self.len();
        let nxt = (id + 1) % n;
        (nxt, self.link_hops(id, nxt))
    }

    /// Predecessor of `id` on the ring and the hop cost of that link.
    pub fn prev(&self, id: usize) -> (usize, usize) {
        let n = self.len();
        let prv = (id + n - 1) % n;
        (prv, self.link_hops(id, prv))
    }

    fn link_hops(&self, a: usize, b: usize) -> usize {
        if self.virtual_links {
            // Folded/snake embedding: a Hamiltonian ring on a mesh has
            // dilation <= 2 everywhere.
            self.mesh.hops(a, b).clamp(1, 2)
        } else {
            self.mesh.hops(a, b)
        }
    }
}

/// A 2-D torus over a `rows x cols` process grid.
#[derive(Debug, Clone, Copy)]
pub struct Torus2d {
    /// The process-grid shape (usually equal to the physical mesh).
    pub grid: Mesh,
    virtual_links: bool,
    mesh: Mesh,
}

impl Torus2d {
    /// View the machine's mesh as a torus of the same shape.
    pub fn new(mesh: Mesh, virtual_links: bool) -> Self {
        Torus2d { grid: mesh, virtual_links, mesh }
    }

    /// Grid coordinates of a processor.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        self.grid.coords(id)
    }

    /// Processor at torus coordinates (wrapped).
    pub fn at(&self, row: isize, col: isize) -> usize {
        let r = row.rem_euclid(self.grid.rows as isize) as usize;
        let c = col.rem_euclid(self.grid.cols as isize) as usize;
        self.grid.id(r, c)
    }

    /// Neighbour one step in the given direction, with its hop cost.
    pub fn step(&self, id: usize, drow: isize, dcol: isize) -> (usize, usize) {
        let (r, c) = self.coords(id);
        let dst = self.at(r as isize + drow, c as isize + dcol);
        let hops = if self.virtual_links {
            // Folded torus embedding: dilation 2.
            self.mesh.hops(id, dst).clamp(1, 2)
        } else {
            self.mesh.hops(id, dst)
        };
        (dst, hops)
    }

    /// West neighbour (wrap) and hop cost.
    pub fn west(&self, id: usize) -> (usize, usize) {
        self.step(id, 0, -1)
    }

    /// East neighbour (wrap) and hop cost.
    pub fn east(&self, id: usize) -> (usize, usize) {
        self.step(id, 0, 1)
    }

    /// North neighbour (wrap) and hop cost.
    pub fn north(&self, id: usize) -> (usize, usize) {
        self.step(id, -1, 0)
    }

    /// South neighbour (wrap) and hop cost.
    pub fn south(&self, id: usize) -> (usize, usize) {
        self.step(id, 1, 0)
    }
}

/// The binomial reduction/broadcast tree the collectives use.
///
/// Processors are renumbered relative to `root`; in round `r` (counting
/// from 0) processor `x` with lowest set bit `2^r` exchanges with
/// `x - 2^r`. This yields `ceil(log2 p)` rounds, matching the paper's
/// "virtual tree topology" for `array_fold` and broadcasts.
#[derive(Debug, Clone, Copy)]
pub struct BinomialTree {
    n: usize,
    root: usize,
}

impl BinomialTree {
    /// Tree over `n` processors rooted at `root`.
    pub fn new(n: usize, root: usize) -> Self {
        debug_assert!(root < n);
        BinomialTree { n, root }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        let mut r = 0;
        while (1usize << r) < self.n {
            r += 1;
        }
        r
    }

    fn rel(&self, id: usize) -> usize {
        (id + self.n - self.root) % self.n
    }

    fn abs(&self, rel: usize) -> usize {
        (rel + self.root) % self.n
    }

    /// The parent of `id` in the tree, or `None` for the root.
    pub fn parent(&self, id: usize) -> Option<usize> {
        let x = self.rel(id);
        if x == 0 {
            return None;
        }
        let low = x & x.wrapping_neg();
        Some(self.abs(x - low))
    }

    /// Children of `id`, in the round order a broadcast visits them.
    pub fn children(&self, id: usize) -> Vec<usize> {
        let x = self.rel(id);
        let mut out = Vec::new();
        let mut bit = 1usize;
        // A node may only have children at bits above its own lowest set
        // bit (or all bits for the root).
        let limit = if x == 0 { self.n } else { x & x.wrapping_neg() };
        while bit < limit && x + bit < self.n {
            out.push(self.abs(x + bit));
            bit <<= 1;
        }
        out
    }

    /// The round in which `id` receives during a broadcast from the root
    /// (the position of its lowest set bit), or `None` for the root.
    pub fn recv_round(&self, id: usize) -> Option<usize> {
        let x = self.rel(id);
        if x == 0 {
            None
        } else {
            Some(x.trailing_zeros() as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let m = Mesh::new(3, 4).unwrap();
        for id in 0..12 {
            let (r, c) = m.coords(id);
            assert_eq!(m.id(r, c), id);
        }
    }

    #[test]
    fn mesh_rejects_degenerate() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(Mesh::near_square(64).unwrap(), Mesh { rows: 8, cols: 8 });
        assert_eq!(Mesh::near_square(32).unwrap(), Mesh { rows: 8, cols: 4 });
        assert_eq!(Mesh::near_square(16).unwrap(), Mesh { rows: 4, cols: 4 });
        assert_eq!(Mesh::near_square(7).unwrap(), Mesh { rows: 7, cols: 1 });
        assert_eq!(Mesh::near_square(1).unwrap(), Mesh { rows: 1, cols: 1 });
        assert!(Mesh::near_square(0).is_err());
    }

    #[test]
    fn mesh_hops_manhattan() {
        let m = Mesh::new(4, 4).unwrap();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn ring_wrap_costs() {
        let m = Mesh::new(2, 4).unwrap();
        let rv = Ring::new(m, true);
        let rp = Ring::new(m, false);
        // internal step
        assert_eq!(rv.next(0).0, 1);
        assert!(rv.next(0).1 <= 2);
        // wrap edge: 7 -> 0. Mesh distance from (1,3) to (0,0) is 4.
        assert_eq!(rp.next(7), (0, 4));
        assert_eq!(rv.next(7).0, 0);
        assert!(rv.next(7).1 <= 2);
        // prev is the inverse of next
        let (nxt, _) = rv.next(3);
        assert_eq!(rv.prev(nxt).0, 3);
    }

    #[test]
    fn torus_neighbours_wrap() {
        let m = Mesh::new(4, 4).unwrap();
        let t = Torus2d::new(m, true);
        assert_eq!(t.west(0).0, 3);
        assert_eq!(t.east(3).0, 0);
        assert_eq!(t.north(0).0, 12);
        assert_eq!(t.south(12).0, 0);
        // interior neighbours cost 1 hop
        assert_eq!(t.east(5), (6, 1));
        // virtual wrap costs at most 2 hops
        assert!(t.west(0).1 <= 2);
        // non-virtual wrap costs the full mesh distance
        let tp = Torus2d::new(m, false);
        assert_eq!(tp.west(0), (3, 3));
        assert_eq!(tp.north(0), (12, 3));
    }

    #[test]
    fn torus_at_wraps_negative() {
        let m = Mesh::new(4, 4).unwrap();
        let t = Torus2d::new(m, true);
        assert_eq!(t.at(-1, -1), 15);
        assert_eq!(t.at(4, 4), 0);
    }

    #[test]
    fn binomial_tree_structure() {
        let t = BinomialTree::new(8, 0);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(5), Some(4));
        assert_eq!(t.parent(6), Some(4));
        assert_eq!(t.parent(7), Some(6));
        assert_eq!(t.children(0), vec![1, 2, 4]);
        assert_eq!(t.children(4), vec![5, 6]);
        assert_eq!(t.children(7), Vec::<usize>::new());
    }

    #[test]
    fn binomial_tree_rooted_elsewhere() {
        let t = BinomialTree::new(8, 3);
        assert_eq!(t.parent(3), None);
        // every non-root eventually reaches the root
        for id in 0..8 {
            let mut cur = id;
            let mut steps = 0;
            while let Some(p) = t.parent(cur) {
                cur = p;
                steps += 1;
                assert!(steps <= 8, "parent chain does not terminate");
            }
            assert_eq!(cur, 3);
        }
    }

    #[test]
    fn binomial_tree_children_parents_consistent() {
        for n in [1usize, 2, 3, 5, 7, 8, 13, 16, 64] {
            for root in [0, n / 2, n - 1] {
                let t = BinomialTree::new(n, root);
                let mut seen = vec![false; n];
                seen[root] = true;
                for id in 0..n {
                    for ch in t.children(id) {
                        assert_eq!(t.parent(ch), Some(id));
                        assert!(!seen[ch], "child visited twice");
                        seen[ch] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "tree spans all nodes (n={n})");
            }
        }
    }

    #[test]
    fn binomial_nonpower_of_two() {
        let t = BinomialTree::new(6, 0);
        assert_eq!(t.rounds(), 3);
        let mut total = 0;
        for id in 0..6 {
            total += t.children(id).len();
        }
        assert_eq!(total, 5, "5 edges span 6 nodes");
    }

    #[test]
    fn recv_round_matches_bit() {
        let t = BinomialTree::new(16, 0);
        assert_eq!(t.recv_round(0), None);
        assert_eq!(t.recv_round(1), Some(0));
        assert_eq!(t.recv_round(2), Some(1));
        assert_eq!(t.recv_round(12), Some(2));
        assert_eq!(t.recv_round(8), Some(3));
    }
}
