//! Collective operations over the whole machine.
//!
//! The paper's collectives run along a binomial tree ("virtual tree
//! topology"): `array_fold` composes partition results toward the root
//! and then broadcasts the final value back down, and
//! `array_broadcast_part` pushes a partition down the tree. The combine
//! order is fixed by the tree, so results are deterministic even for
//! non-commutative operators — but, as the paper specifies, only
//! associative & commutative operators make the result independent of
//! the machine shape.
//!
//! On top of the tree trio this module adds the group-communication
//! patterns of modern collective stacks — allgather, alltoall,
//! reduce-scatter, neighborhood exchange — plus two *algorithm
//! families* for allreduce and allgather:
//!
//! * **Ring** algorithms step only between consecutive processor ids,
//!   so they ride raw neighbour links (store-and-forward: bytes are
//!   paid once per weighted hop, but there is no per-message routing
//!   software). Cheap when ring links are short, terrible when the
//!   topology makes `id → id+1` far.
//! * **Recursive doubling** exchanges with partner `id ^ 2^r` in round
//!   `r` — `⌈log₂ p⌉` routed messages whose byte cost is hop-
//!   independent, paying the full software overhead per message.
//!
//! Which family wins is a pure function of the machine's
//! [`Topology`] hop metric and [`CostModel`] constants — both sides of
//! the trade are *analytic* in this simulator, so [`select_allreduce`]
//! and [`select_allgather`] simply evaluate each algorithm's closed-
//! form critical path and take the argmin. The selection uses no
//! per-run value sizes (a nominal payload stands in), so every
//! processor picks the same algorithm and determinism is preserved.

use crate::cost::CostModel;
use crate::proc::Proc;
use crate::topology::{BinomialTree, Topology};
use crate::wire::Wire;

/// Tag-space offset separating the gather and release phases of
/// collectives that have both.
const PHASE: u64 = 1 << 62;

/// Nominal payload (bytes) the algorithm-selection estimates price
/// messages at. Collectives mostly move fold scalars and small records;
/// what matters for selection is the hop structure, not the exact size.
const NOMINAL_BYTES: usize = 16;

/// Which algorithm a collective runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveAlgo {
    /// The paper's binomial tree (reduce to root 0, broadcast back).
    /// The allreduce default — bit-identical to the seed simulator.
    Tree,
    /// Ring pipeline over raw neighbour links.
    Ring,
    /// Recursive doubling over routed messages.
    RecDouble,
    /// Pick Ring vs RecDouble by the topology's hop metric.
    Auto,
}

impl CollectiveAlgo {
    /// Parse a `--collective-algo` / `SKIL_COLLECTIVE_ALGO` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "tree" => Some(CollectiveAlgo::Tree),
            "ring" => Some(CollectiveAlgo::Ring),
            "rd" | "recursive-doubling" => Some(CollectiveAlgo::RecDouble),
            "auto" => Some(CollectiveAlgo::Auto),
            _ => None,
        }
    }

    /// Canonical spelling (`parse` round-trips it).
    pub fn as_str(&self) -> &'static str {
        match self {
            CollectiveAlgo::Tree => "tree",
            CollectiveAlgo::Ring => "ring",
            CollectiveAlgo::RecDouble => "rd",
            CollectiveAlgo::Auto => "auto",
        }
    }
}

/// Largest power of two `<= n` (n >= 1).
fn prev_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() >> 1
    }
}

/// One raw-link chain step over `h` weighted hops: the sender's and
/// receiver's `raw_link_overhead` plus store-and-forward of `bytes`
/// across each hop (mirrors `send_raw`/`recv_raw` charging).
fn raw_step(cost: &CostModel, h: usize, bytes: usize) -> u64 {
    let per_hop = cost.raw_link_overhead + cost.per_byte * bytes as u64;
    2 * cost.raw_link_overhead + h.max(1) as u64 * per_hop
}

/// One routed software message over `h` weighted hops (mirrors
/// `send`/`recv` charging: sender CPU, setup, bytes once, per-hop
/// wire latency, receiver CPU).
fn routed_step(cost: &CostModel, h: usize, bytes: usize) -> u64 {
    cost.send_cpu
        + cost.msg_setup
        + cost.per_byte * bytes as u64
        + cost.per_hop * h.max(1) as u64
        + cost.recv_cpu
}

/// Worst weighted hop distance over the recursive-doubling pairs of
/// round `bit` (partners `i ↔ i ^ bit` below `p2`).
fn rd_round_max_hops(topo: &Topology, p2: usize, bit: usize) -> usize {
    (0..p2).map(|i| topo.hops(i, i ^ bit)).max().unwrap_or(1)
}

/// Estimated critical path of one allreduce under `algo` on `topo` —
/// the closed forms the auto-selection compares. `Auto` evaluates to
/// the winner's estimate.
pub fn estimate_allreduce(algo: CollectiveAlgo, topo: &Topology, cost: &CostModel) -> u64 {
    let n = topo.procs();
    if n <= 1 {
        return 0;
    }
    match algo {
        CollectiveAlgo::Ring => {
            // Two sequential circulations of the accumulator: the
            // value visits every forward link once per phase (phase 2
            // enters through the wrap link instead of the last forward
            // link).
            let fwd: u64 =
                (0..n - 1).map(|i| raw_step(cost, topo.hops(i, i + 1), NOMINAL_BYTES)).sum();
            let wrap = raw_step(cost, topo.hops(n - 1, 0), NOMINAL_BYTES);
            let last = raw_step(cost, topo.hops(n - 2, n - 1), NOMINAL_BYTES);
            2 * fwd + wrap - last
        }
        CollectiveAlgo::RecDouble => {
            let p2 = prev_pow2(n);
            let mut est = 0u64;
            let mut bit = 1usize;
            while bit < p2 {
                est += routed_step(cost, rd_round_max_hops(topo, p2, bit), NOMINAL_BYTES);
                bit <<= 1;
            }
            if n > p2 {
                let fold = (p2..n).map(|e| topo.hops(e, e - p2)).max().unwrap_or(1);
                est += 2 * routed_step(cost, fold, NOMINAL_BYTES);
            }
            est
        }
        CollectiveAlgo::Tree => {
            // Reduce + broadcast along the binomial tree: one routed
            // message per round each way, at that round's worst edge.
            let mut est = 0u64;
            let mut bit = 1usize;
            while bit < n {
                // round-`bit` tree edges pair x with x - bit for x whose
                // lowest set bit is `bit`
                let h = (bit..n)
                    .filter(|x| x & (bit * 2 - 1) == bit)
                    .map(|x| topo.hops(x, x - bit))
                    .max()
                    .unwrap_or(1);
                est += 2 * routed_step(cost, h, NOMINAL_BYTES);
                bit <<= 1;
            }
            est
        }
        CollectiveAlgo::Auto => estimate_allreduce(select_allreduce(topo, cost), topo, cost),
    }
}

/// Estimated critical path of one allgather under `algo` on `topo`.
pub fn estimate_allgather(algo: CollectiveAlgo, topo: &Topology, cost: &CostModel) -> u64 {
    let n = topo.procs();
    if n <= 1 {
        return 0;
    }
    match algo {
        CollectiveAlgo::Ring => {
            // n-1 rounds, but the blocks stream around the ring
            // concurrently (links have latency, not occupancy), so the
            // critical path is one full circuit of link transits — the
            // last block to arrive anywhere travelled every link —
            // plus one processor's per-round link overheads.
            let per_hop = cost.raw_link_overhead + cost.per_byte * NOMINAL_BYTES as u64;
            let circuit: u64 =
                (0..n).map(|i| topo.hops(i, (i + 1) % n).max(1) as u64 * per_hop).sum();
            circuit + (n as u64 - 1) * 2 * cost.raw_link_overhead
        }
        CollectiveAlgo::RecDouble => {
            let p2 = prev_pow2(n);
            let mut est = 0u64;
            let mut bit = 1usize;
            while bit < p2 {
                // the exchanged list doubles every round
                est += routed_step(cost, rd_round_max_hops(topo, p2, bit), NOMINAL_BYTES * bit);
                bit <<= 1;
            }
            if n > p2 {
                let fold = (p2..n).map(|e| topo.hops(e, e - p2)).max().unwrap_or(1);
                est += routed_step(cost, fold, NOMINAL_BYTES)
                    + routed_step(cost, fold, NOMINAL_BYTES * n);
            }
            est
        }
        CollectiveAlgo::Tree => {
            // gather to the root + broadcast of the whole vector.
            estimate_allreduce(CollectiveAlgo::Tree, topo, cost)
                + routed_step(cost, topo.diameter(), NOMINAL_BYTES * n)
        }
        CollectiveAlgo::Auto => estimate_allgather(select_allgather(topo, cost), topo, cost),
    }
}

/// The allreduce algorithm the hop metric selects on `topo`: the
/// cheaper of [`CollectiveAlgo::Ring`] and [`CollectiveAlgo::RecDouble`]
/// by closed-form estimate (ties go to Ring). Deterministic — every
/// processor evaluates the same pure function.
pub fn select_allreduce(topo: &Topology, cost: &CostModel) -> CollectiveAlgo {
    let ring = estimate_allreduce(CollectiveAlgo::Ring, topo, cost);
    let rd = estimate_allreduce(CollectiveAlgo::RecDouble, topo, cost);
    if ring <= rd {
        CollectiveAlgo::Ring
    } else {
        CollectiveAlgo::RecDouble
    }
}

/// The allgather algorithm the hop metric selects on `topo` (see
/// [`select_allreduce`]).
pub fn select_allgather(topo: &Topology, cost: &CostModel) -> CollectiveAlgo {
    let ring = estimate_allgather(CollectiveAlgo::Ring, topo, cost);
    let rd = estimate_allgather(CollectiveAlgo::RecDouble, topo, cost);
    if ring <= rd {
        CollectiveAlgo::Ring
    } else {
        CollectiveAlgo::RecDouble
    }
}

impl Proc<'_> {
    /// Broadcast `val` from `root` to every processor. Exactly the root
    /// must pass `Some`; everyone receives the value.
    pub fn broadcast<T: Wire>(&mut self, root: usize, tag: u64, val: Option<T>) -> T {
        let span = self.span_begin();
        let tree = BinomialTree::new(self.nprocs(), root);
        // Send to the largest subtree first: its delivery chain is the
        // longest, so it must leave the (serializing) sender earliest.
        let mut children = tree.children(self.id());
        children.reverse();
        // Flatten once: the root encodes the value a single time and
        // every interior node forwards the payload it received, so one
        // buffer crosses the whole tree by pointer clones (or, for the
        // short payloads typical of fold results, by inline copies that
        // never touch the heap). The encoding is deterministic, so
        // forwarded bytes are identical to what a re-flatten would
        // produce.
        let (v, payload) = if self.id() == root {
            let v = val.expect("broadcast root must supply a value");
            let payload = if children.is_empty() { None } else { Some(self.encode(&v)) };
            (v, payload)
        } else {
            assert!(val.is_none(), "non-root processor supplied a broadcast value");
            let parent = tree.parent(self.id()).expect("non-root has a parent");
            let recv_cpu = self.cost().recv_cpu;
            let env = self.recv_envelope(parent, tag, recv_cpu);
            (self.decode_or_panic(&env), Some(env.bytes))
        };
        if let Some(payload) = payload {
            for child in children {
                self.send_shared(child, tag, payload.clone());
            }
        }
        self.span_end("broadcast", span);
        v
    }

    /// Reduce every processor's `mine` to the root with `combine`,
    /// charging `op_cycles` per combine. Returns `Some` only at the root.
    pub fn reduce<T, F>(
        &mut self,
        root: usize,
        tag: u64,
        mine: T,
        mut combine: F,
        op_cycles: u64,
    ) -> Option<T>
    where
        T: Wire,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let tree = BinomialTree::new(self.nprocs(), root);
        let mut acc = mine;
        // Children arrive in reverse round order: the child with the
        // largest subtree reports last.
        let mut children = tree.children(self.id());
        children.reverse();
        for child in children {
            let theirs: T = self.recv(child, tag);
            self.charge(op_cycles);
            acc = combine(acc, theirs);
        }
        let out = match tree.parent(self.id()) {
            Some(parent) => {
                self.send(parent, tag, &acc);
                None
            }
            None => Some(acc),
        };
        self.span_end("reduce", span);
        out
    }

    /// Reduce every processor's `mine` into one value known everywhere.
    ///
    /// Runs the machine's configured algorithm
    /// ([`Proc::collective_algo`]): the paper's binomial tree by
    /// default — reduce to root 0, broadcast back, exactly the
    /// communication structure of `array_fold` — or the ring /
    /// recursive-doubling variants, or hop-metric auto-selection.
    /// All variants agree for associative & commutative `combine`.
    pub fn allreduce<T, F>(&mut self, tag: u64, mine: T, combine: F, op_cycles: u64) -> T
    where
        T: Wire + Clone,
        F: FnMut(T, T) -> T,
    {
        let algo = self.collective_algo().unwrap_or(CollectiveAlgo::Tree);
        self.allreduce_with(algo, tag, mine, combine, op_cycles)
    }

    /// [`allreduce`](Proc::allreduce) with an explicit algorithm,
    /// ignoring the machine-wide setting (differential tests and the
    /// bench compare variants this way).
    pub fn allreduce_with<T, F>(
        &mut self,
        algo: CollectiveAlgo,
        tag: u64,
        mine: T,
        combine: F,
        op_cycles: u64,
    ) -> T
    where
        T: Wire + Clone,
        F: FnMut(T, T) -> T,
    {
        let algo = match algo {
            CollectiveAlgo::Auto => {
                let topo = self.topology();
                select_allreduce(&topo, &self.cost().clone())
            }
            a => a,
        };
        match algo {
            CollectiveAlgo::Tree => self.allreduce_tree(tag, mine, combine, op_cycles),
            CollectiveAlgo::Ring => self.allreduce_ring(tag, mine, combine, op_cycles),
            CollectiveAlgo::RecDouble => self.allreduce_rd(tag, mine, combine, op_cycles),
            CollectiveAlgo::Auto => unreachable!("Auto resolved above"),
        }
    }

    /// The paper's allreduce: reduce to root 0 along the binomial tree
    /// and broadcast the result back down.
    fn allreduce_tree<T, F>(&mut self, tag: u64, mine: T, combine: F, op_cycles: u64) -> T
    where
        T: Wire + Clone,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let root = 0;
        let reduced = self.reduce(root, tag, mine, combine, op_cycles);
        let out = if self.id() == root {
            let v = reduced.expect("root holds the reduction");
            self.broadcast(root, tag | PHASE, Some(v))
        } else {
            self.broadcast(root, tag | PHASE, None)
        };
        self.span_end("allreduce", span);
        out
    }

    /// Ring allreduce: the accumulator makes one sequential circulation
    /// `0 → 1 → … → n-1` (combining in id order), then the final value
    /// circulates back around through the wrap link. Every transfer is
    /// a raw neighbour-link step priced by the topology's hop metric.
    fn allreduce_ring<T, F>(&mut self, tag: u64, mine: T, mut combine: F, op_cycles: u64) -> T
    where
        T: Wire,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        if n == 1 {
            self.span_end("allreduce", span);
            return mine;
        }
        let next = (id + 1) % n;
        let prev = (id + n - 1) % n;
        let h_next = self.hops_to(next);
        // Phase 1: left-fold the accumulator along the chain.
        let full = if id == 0 {
            self.send_raw(next, h_next, tag, &mine);
            None
        } else {
            let upstream: T = self.recv_raw(prev, tag);
            self.charge(op_cycles);
            let acc = combine(upstream, mine);
            if id < n - 1 {
                self.send_raw(next, h_next, tag, &acc);
                None
            } else {
                Some(acc)
            }
        };
        // Phase 2: the full value circulates n-1 → 0 → … → n-2.
        let out = match full {
            Some(v) => {
                self.send_raw(next, h_next, tag | PHASE, &v);
                v
            }
            None => {
                let v: T = self.recv_raw(prev, tag | PHASE);
                if id != n - 2 {
                    self.send_raw(next, h_next, tag | PHASE, &v);
                }
                v
            }
        };
        self.span_end("allreduce", span);
        out
    }

    /// Recursive-doubling allreduce: fold non-power-of-two stragglers
    /// into the largest power-of-two core, exchange with `id ^ 2^r` in
    /// round `r` (routed messages), then return results to the
    /// stragglers. Both partners combine lower-id-first, so all
    /// processors hold the identical value.
    fn allreduce_rd<T, F>(&mut self, tag: u64, mine: T, mut combine: F, op_cycles: u64) -> T
    where
        T: Wire,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        if n == 1 {
            self.span_end("allreduce", span);
            return mine;
        }
        let p2 = prev_pow2(n);
        if id >= p2 {
            // straggler: contribute, then wait for the answer
            self.send(id - p2, tag, &mine);
            let out: T = self.recv(id - p2, tag | PHASE);
            self.span_end("allreduce", span);
            return out;
        }
        let mut acc = mine;
        if id + p2 < n {
            let theirs: T = self.recv(id + p2, tag);
            self.charge(op_cycles);
            acc = combine(acc, theirs);
        }
        let mut bit = 1usize;
        while bit < p2 {
            let partner = id ^ bit;
            self.send(partner, tag, &acc);
            let theirs: T = self.recv(partner, tag);
            self.charge(op_cycles);
            acc = if id < partner { combine(acc, theirs) } else { combine(theirs, acc) };
            bit <<= 1;
        }
        if id + p2 < n {
            self.send(id + p2, tag | PHASE, &acc);
        }
        self.span_end("allreduce", span);
        acc
    }

    /// Synchronize all processors: no processor continues (in virtual
    /// time) before every processor has arrived.
    pub fn barrier(&mut self, tag: u64) {
        // Gather arrival times to the root, then release everyone at the
        // synchronized time. Virtual clocks advance through the message
        // arrival rule, so the barrier cost reflects two tree traversals.
        let _ = self.allreduce(tag, 0u8, |_, _| 0u8, 0);
    }

    /// Gather each processor's value at the root; `None` elsewhere.
    /// The result vector is indexed by processor id.
    pub fn gather<T: Wire>(&mut self, root: usize, tag: u64, mine: T) -> Option<Vec<T>> {
        let n = self.nprocs();
        let reduced = self.reduce(
            root,
            tag,
            vec![(self.id(), mine.to_bytes())],
            |mut a, b| {
                a.extend(b);
                a
            },
            0,
        );
        reduced.map(|pairs| {
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (id, bytes) in pairs {
                slots[id] = Some(T::from_bytes(&bytes).expect("gather payload decodes"));
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(id, v)| v.unwrap_or_else(|| panic!("gather missing value from {id}")))
                .collect()
        })
    }

    /// Every processor contributes `mine`; every processor receives the
    /// vector of all contributions, indexed by processor id.
    ///
    /// Runs the machine's configured algorithm; unset defaults to
    /// hop-metric auto-selection ([`select_allgather`]).
    pub fn allgather<T: Wire + Clone>(&mut self, tag: u64, mine: T) -> Vec<T> {
        let algo = self.collective_algo().unwrap_or(CollectiveAlgo::Auto);
        self.allgather_with(algo, tag, mine)
    }

    /// [`allgather`](Proc::allgather) with an explicit algorithm.
    pub fn allgather_with<T: Wire + Clone>(
        &mut self,
        algo: CollectiveAlgo,
        tag: u64,
        mine: T,
    ) -> Vec<T> {
        let algo = match algo {
            CollectiveAlgo::Auto => {
                let topo = self.topology();
                select_allgather(&topo, &self.cost().clone())
            }
            a => a,
        };
        match algo {
            CollectiveAlgo::Ring => self.allgather_ring(tag, mine),
            CollectiveAlgo::RecDouble => self.allgather_rd(tag, mine),
            CollectiveAlgo::Tree => {
                // gather at root 0, broadcast the assembled vector
                let span = self.span_begin();
                let gathered = self.gather(0, tag, mine);
                let out = self.broadcast(0, tag | PHASE, gathered);
                self.span_end("allgather", span);
                out
            }
            CollectiveAlgo::Auto => unreachable!("Auto resolved above"),
        }
    }

    /// Ring allgather: in step `s` every processor forwards the block
    /// it acquired in step `s-1` (initially its own) to its successor
    /// over a raw neighbour link; after `n-1` steps everyone holds all
    /// blocks.
    fn allgather_ring<T: Wire + Clone>(&mut self, tag: u64, mine: T) -> Vec<T> {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[id] = Some(mine);
        if n > 1 {
            let next = (id + 1) % n;
            let prev = (id + n - 1) % n;
            let h_next = self.hops_to(next);
            for s in 0..n - 1 {
                let send_idx = (id + n - s) % n;
                let recv_idx = (id + n - 1 - s) % n;
                let v = out[send_idx].clone().expect("block acquired in an earlier step");
                self.send_raw(next, h_next, tag, &v);
                out[recv_idx] = Some(self.recv_raw(prev, tag));
            }
        }
        let out = out.into_iter().map(|v| v.expect("all blocks received")).collect();
        self.span_end("allgather", span);
        out
    }

    /// Recursive-doubling allgather: id-tagged blocks double up through
    /// `id ^ 2^r` exchanges (routed messages); non-power-of-two
    /// stragglers fold into the core first and receive the assembled
    /// vector afterwards.
    fn allgather_rd<T: Wire + Clone>(&mut self, tag: u64, mine: T) -> Vec<T> {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        let assemble = |pairs: Vec<(usize, Vec<u8>)>| -> Vec<T> {
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (pid, bytes) in pairs {
                slots[pid] = Some(T::from_bytes(&bytes).expect("allgather payload decodes"));
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(pid, v)| v.unwrap_or_else(|| panic!("allgather missing block {pid}")))
                .collect()
        };
        let mut items: Vec<(usize, Vec<u8>)> = vec![(id, mine.to_bytes())];
        if n == 1 {
            let out = assemble(items);
            self.span_end("allgather", span);
            return out;
        }
        let p2 = prev_pow2(n);
        if id >= p2 {
            self.send(id - p2, tag, &items);
            let all: Vec<(usize, Vec<u8>)> = self.recv(id - p2, tag | PHASE);
            let out = assemble(all);
            self.span_end("allgather", span);
            return out;
        }
        if id + p2 < n {
            let theirs: Vec<(usize, Vec<u8>)> = self.recv(id + p2, tag);
            items.extend(theirs);
        }
        let mut bit = 1usize;
        while bit < p2 {
            let partner = id ^ bit;
            self.send(partner, tag, &items);
            let theirs: Vec<(usize, Vec<u8>)> = self.recv(partner, tag);
            items.extend(theirs);
            bit <<= 1;
        }
        if id + p2 < n {
            self.send(id + p2, tag | PHASE, &items);
        }
        let out = assemble(items);
        self.span_end("allgather", span);
        out
    }

    /// Personalized all-to-all: `parts[j]` goes to processor `j`; the
    /// result holds one block from every processor, indexed by source
    /// id. Pairwise-ordered rounds (`s = 1..n`: send to `id+s`, receive
    /// from `id-s`, mod n) over routed messages — every round is a
    /// disjoint permutation, so no link sees two blocks at once.
    pub fn alltoall<T: Wire + Clone>(&mut self, tag: u64, mut parts: Vec<T>) -> Vec<T> {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        assert_eq!(parts.len(), n, "alltoall needs one block per processor");
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for s in 1..n {
            let dst = (id + s) % n;
            let src = (id + n - s) % n;
            self.send(dst, tag, &parts[dst]);
            out[src] = Some(self.recv(src, tag));
        }
        out[id] = Some(parts.swap_remove(id));
        let out = out.into_iter().map(|v| v.expect("alltoall block")).collect();
        self.span_end("alltoall", span);
        out
    }

    /// Reduce-scatter over blocks: `parts[j]` is this processor's
    /// contribution to the value that ends up on processor `j`; the
    /// return value is block `id` combined across all processors. Ring
    /// pipeline over raw neighbour links — block `j` starts at `j+1`
    /// and accumulates forward until it lands on `j`.
    pub fn reduce_scatter<T, F>(
        &mut self,
        tag: u64,
        parts: Vec<T>,
        mut combine: F,
        op_cycles: u64,
    ) -> T
    where
        T: Wire,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let n = self.nprocs();
        let id = self.id();
        assert_eq!(parts.len(), n, "reduce_scatter needs one block per processor");
        let mut parts: Vec<Option<T>> = parts.into_iter().map(Some).collect();
        if n == 1 {
            let out = parts[0].take().expect("single block");
            self.span_end("reduce_scatter", span);
            return out;
        }
        let next = (id + 1) % n;
        let prev = (id + n - 1) % n;
        let h_next = self.hops_to(next);
        let mut carry: Option<T> = None;
        for s in 0..n - 1 {
            let j = (id + 2 * n - s - 1) % n;
            let block = parts[j].take().expect("each block leaves once");
            let v = match carry.take() {
                Some(c) => {
                    self.charge(op_cycles);
                    combine(c, block)
                }
                None => block,
            };
            self.send_raw(next, h_next, tag, &v);
            carry = Some(self.recv_raw(prev, tag));
        }
        let mine = parts[id].take().expect("own block stays until the end");
        self.charge(op_cycles);
        let out = combine(carry.take().expect("accumulated block arrives"), mine);
        self.span_end("reduce_scatter", span);
        out
    }

    /// Exchange `mine` with every physical neighbour
    /// ([`Topology::neighbors`]): mesh N/E/S/W links, hypercube bit
    /// flips, fat-tree leaf-switch siblings. Returns `(neighbor, value)`
    /// pairs in ascending neighbor order. The halo pattern of stencil
    /// codes, priced by the physical links it actually crosses.
    pub fn neighbor_exchange<T: Wire + Clone>(&mut self, tag: u64, mine: T) -> Vec<(usize, T)> {
        let span = self.span_begin();
        let nbrs = self.topology().neighbors(self.id());
        for &nb in &nbrs {
            self.send(nb, tag, &mine);
        }
        let out = nbrs.into_iter().map(|nb| (nb, self.recv(nb, tag))).collect();
        self.span_end("neighbor_exchange", span);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::machine::{Machine, MachineConfig};

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::procs(n).unwrap())
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for n in [1, 2, 3, 4, 7, 8, 16] {
            let m = machine(n);
            let run = m.run(|p| {
                let v = if p.id() == 0 { Some(42u32) } else { None };
                p.broadcast(0, 5, v)
            });
            assert!(run.results.iter().all(|&v| v == 42), "n={n}");
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let m = machine(8);
        let run = m.run(|p| {
            let v = if p.id() == 5 { Some(99u32) } else { None };
            p.broadcast(5, 5, v)
        });
        assert!(run.results.iter().all(|&v| v == 99));
    }

    #[test]
    fn reduce_sums() {
        for n in [1, 2, 5, 8, 16, 64] {
            let m = machine(n);
            let run = m.run(|p| p.reduce(0, 7, p.id() as u64, |a, b| a + b, 10));
            let expect = (n as u64 * (n as u64 - 1)) / 2;
            assert_eq!(run.results[0], Some(expect), "n={n}");
            assert!(run.results[1..].iter().all(|r| r.is_none()));
        }
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        for n in [2, 3, 8, 32] {
            let m = machine(n);
            let run = m.run(|p| p.allreduce(11, (p.id() + 1) as u64, |a, b| a.max(b), 5));
            assert!(run.results.iter().all(|&v| v == n as u64), "n={n}");
        }
    }

    #[test]
    fn gather_collects_in_id_order() {
        let m = machine(6);
        let run = m.run(|p| p.gather(0, 13, (p.id() as u32) * 10));
        assert_eq!(run.results[0].as_deref(), Some(&[0u32, 10, 20, 30, 40, 50][..]));
        assert!(run.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn barrier_synchronizes_virtual_clocks() {
        let m = machine(4);
        let run = m.run(|p| {
            // Skewed compute before the barrier.
            p.charge(1_000_000 * (p.id() as u64));
            p.barrier(17);
            p.now()
        });
        // After the barrier nobody's clock may be before the slowest
        // processor's pre-barrier time.
        let slowest_compute = 3_000_000u64;
        for &t in &run.results {
            assert!(t >= slowest_compute, "clock {t} precedes barrier release");
        }
    }

    #[test]
    fn broadcast_latency_scales_with_tree_depth() {
        let cost = CostModel::t800();
        let time = |n: usize| {
            let m = Machine::new(MachineConfig::procs(n).unwrap());
            m.run(|p| {
                let v = if p.id() == 0 { Some(7u8) } else { None };
                p.broadcast(0, 1, v);
            })
            .report
            .sim_cycles
        };
        let t2 = time(2);
        let t16 = time(16);
        // 16 processors need 4 rounds; 2 need 1. The critical path grows
        // roughly linearly in rounds.
        assert!(t16 > 3 * t2 / 2, "t2={t2} t16={t16}");
        assert!(t16 >= 4 * cost.msg_setup, "tree depth sets a floor");
    }

    #[test]
    fn reduce_deterministic_order_for_noncommutative_op() {
        // The tree fixes the combine order, so even a non-commutative
        // operator yields a reproducible (if shape-dependent) result.
        let m = machine(8);
        let a = m.run(|p| {
            p.reduce(
                0,
                3,
                vec![p.id() as u32],
                |mut x, y| {
                    x.extend(y);
                    x
                },
                0,
            )
        });
        let b = m.run(|p| {
            p.reduce(
                0,
                3,
                vec![p.id() as u32],
                |mut x, y| {
                    x.extend(y);
                    x
                },
                0,
            )
        });
        assert_eq!(a.results[0], b.results[0]);
    }

    #[test]
    #[should_panic(expected = "broadcast root must supply a value")]
    fn broadcast_root_without_value_panics() {
        let m = machine(2);
        let _ = m.run(|p| p.broadcast::<u8>(0, 1, None));
    }

    #[test]
    fn collectives_survive_a_lossy_fault_plan() {
        // Every binomial-tree edge goes through the reliable-delivery
        // layer, so a recoverable plan must not change any collective's
        // value on any processor.
        use crate::fault::FaultPlan;
        let program = |p: &mut crate::proc::Proc<'_>| {
            let b = p.broadcast(0, 1, (p.id() == 0).then_some(7u64));
            let r = p.reduce(0, 2, p.id() as u64, |a, b| a + b, 4);
            let ar = p.allreduce(3, p.id() as u64 + b, |a, b| a.max(b), 4);
            p.barrier(4);
            let g = p.gather(0, 5, (p.id() as u64) << 8);
            (b, r, ar, g)
        };
        for n in [2, 3, 8, 16] {
            let clean = machine(n).run(program);
            let plan =
                FaultPlan::seeded(21).with_drop(0.25).with_dup(0.25).with_delay(0.25, 30_000);
            let faulty =
                Machine::new(MachineConfig::procs(n).unwrap().with_faults(plan)).run(program);
            assert_eq!(faulty.results, clean.results, "n={n}");
            let events: u64 = faulty.report.procs.iter().map(|p| p.stats.fault_events()).sum();
            assert!(events > 0, "n={n}: plan injected nothing");
        }
    }

    use crate::topology::Topology;
    use crate::CollectiveAlgo;

    fn zoo(n: usize) -> Vec<Topology> {
        let mut v = vec![Topology::default_for(n).unwrap()];
        if n.is_power_of_two() {
            v.push(Topology::parse(&format!("hypercube:{n}")).unwrap());
        }
        if n == 16 {
            v.push(Topology::parse("fattree:2,4").unwrap());
            v.push(Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*64").unwrap());
        }
        if n == 8 {
            v.push(Topology::parse("fattree:3,2").unwrap());
        }
        v
    }

    fn on(topo: Topology) -> Machine {
        Machine::new(MachineConfig::on_topology(topo).unwrap())
    }

    #[test]
    fn allreduce_variants_agree_on_every_topology() {
        for n in [1, 2, 3, 5, 8, 16] {
            for topo in zoo(n) {
                for algo in [
                    CollectiveAlgo::Tree,
                    CollectiveAlgo::Ring,
                    CollectiveAlgo::RecDouble,
                    CollectiveAlgo::Auto,
                ] {
                    let m = on(topo);
                    let run = m.run(move |p| {
                        p.allreduce_with(algo, 11, p.id() as u64 + 1, |a, b| a + b, 5)
                    });
                    let expect = (n as u64 * (n as u64 + 1)) / 2;
                    assert!(
                        run.results.iter().all(|&v| v == expect),
                        "n={n} topo={topo} algo={algo:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn allreduce_ring_preserves_id_order_for_noncommutative_op() {
        // The ring left-fold combines strictly in processor-id order, so
        // even a non-commutative operator gives every processor 0..n.
        for n in [2, 3, 7, 8] {
            let m = machine(n);
            let run = m.run(|p| {
                p.allreduce_with(
                    CollectiveAlgo::Ring,
                    9,
                    vec![p.id() as u32],
                    |mut x, y| {
                        x.extend(y);
                        x
                    },
                    0,
                )
            });
            let expect: Vec<u32> = (0..n as u32).collect();
            assert!(run.results.iter().all(|v| *v == expect), "n={n}");
        }
    }

    #[test]
    fn allgather_variants_agree_on_every_topology() {
        for n in [1, 2, 3, 6, 8, 16] {
            for topo in zoo(n) {
                for algo in [
                    CollectiveAlgo::Tree,
                    CollectiveAlgo::Ring,
                    CollectiveAlgo::RecDouble,
                    CollectiveAlgo::Auto,
                ] {
                    let m = on(topo);
                    let run = m.run(move |p| p.allgather_with(algo, 21, (p.id() as u32) * 10));
                    let expect: Vec<u32> = (0..n as u32).map(|i| i * 10).collect();
                    assert!(
                        run.results.iter().all(|v| *v == expect),
                        "n={n} topo={topo} algo={algo:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoall_transposes_on_every_topology() {
        for n in [1, 2, 4, 8, 16] {
            for topo in zoo(n) {
                let m = on(topo);
                let run = m.run(|p| {
                    let n = p.nprocs();
                    // parts[d] = value "id -> d"
                    let parts: Vec<u64> =
                        (0..n).map(|d| ((p.id() as u64) << 16) | d as u64).collect();
                    p.alltoall(31, parts)
                });
                for (id, got) in run.results.iter().enumerate() {
                    let expect: Vec<u64> =
                        (0..n).map(|src| ((src as u64) << 16) | id as u64).collect();
                    assert_eq!(*got, expect, "n={n} topo={topo} id={id}");
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_own_block_on_every_topology() {
        for n in [1, 2, 3, 5, 8, 16] {
            for topo in zoo(n) {
                let m = on(topo);
                let run = m.run(|p| {
                    let n = p.nprocs();
                    // parts[j] = id + j; block j's reduction = sum_id(id) + n*j.
                    let parts: Vec<u64> = (0..n).map(|j| (p.id() + j) as u64).collect();
                    p.reduce_scatter(41, parts, |a, b| a + b, 3)
                });
                let base = (n as u64 * (n as u64 - 1)) / 2;
                for (id, &got) in run.results.iter().enumerate() {
                    assert_eq!(got, base + (n * id) as u64, "n={n} topo={topo} id={id}");
                }
            }
        }
    }

    #[test]
    fn neighbor_exchange_matches_topology_neighbors() {
        for spec in
            ["mesh2d:4x4", "hypercube:16", "fattree:2,4", "hetero:mesh2d:4x4:slowlinks=col2*64"]
        {
            let topo = Topology::parse(spec).unwrap();
            let m = on(topo);
            let run = m.run(|p| p.neighbor_exchange(51, p.id() as u64 * 7));
            for (id, got) in run.results.iter().enumerate() {
                let expect: Vec<(usize, u64)> =
                    topo.neighbors(id).into_iter().map(|nb| (nb, nb as u64 * 7)).collect();
                assert_eq!(*got, expect, "topo={spec} id={id}");
            }
        }
    }

    #[test]
    fn selection_tracks_hop_metric() {
        let cost = CostModel::t800();
        for spec in ["mesh2d:4x4", "hypercube:16", "fattree:2,4"] {
            let topo = Topology::parse(spec).unwrap();
            assert_eq!(crate::select_allreduce(&topo, &cost), CollectiveAlgo::Ring, "{spec}");
            assert_eq!(crate::select_allgather(&topo, &cost), CollectiveAlgo::Ring, "{spec}");
        }
        let hetero = Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*64").unwrap();
        assert_eq!(crate::select_allreduce(&hetero, &cost), CollectiveAlgo::RecDouble);
        // The allgather ring pipelines its blocks, so it pays the slow
        // cut's latency once per circuit, not once per round — it stays
        // the winner even on the heterogeneous machine.
        assert_eq!(crate::select_allgather(&hetero, &cost), CollectiveAlgo::Ring);
    }

    #[test]
    fn estimates_are_positive_and_auto_is_min() {
        let cost = CostModel::t800();
        for spec in
            ["mesh2d:4x4", "hypercube:8", "fattree:3,2", "hetero:mesh2d:2x4:slowlinks=col1*16"]
        {
            let topo = Topology::parse(spec).unwrap();
            let ring = crate::estimate_allreduce(CollectiveAlgo::Ring, &topo, &cost);
            let rd = crate::estimate_allreduce(CollectiveAlgo::RecDouble, &topo, &cost);
            let auto = crate::estimate_allreduce(CollectiveAlgo::Auto, &topo, &cost);
            assert!(ring > 0 && rd > 0, "{spec}");
            assert_eq!(auto, ring.min(rd), "{spec}");
        }
    }

    #[test]
    fn env_override_forces_collective_algo() {
        // SKIL_COLLECTIVE_ALGO is read once at machine construction via
        // resolved_collective_algo; config takes precedence when set.
        let topo = Topology::parse("mesh2d:2x2").unwrap();
        let forced = Machine::new(
            MachineConfig::on_topology(topo)
                .unwrap()
                .with_collective_algo(CollectiveAlgo::RecDouble),
        );
        let run = forced.run(|p| p.allreduce(61, p.id() as u64, |a, b| a + b, 2));
        assert!(run.results.iter().all(|&v| v == 6));
    }

    #[test]
    fn ring_and_rd_have_stable_logical_message_counts() {
        // Per-proc sends/recvs are a pure function of (algo, n), never of
        // payload or host scheduling: pin them for n=8.
        let n = 8;
        let count = |algo: CollectiveAlgo| {
            let m = machine(n);
            let run = m.run(move |p| p.allreduce_with(algo, 71, p.id() as u64, |a, b| a + b, 1));
            run.report.procs.iter().map(|p| (p.stats.sends, p.stats.recvs)).collect::<Vec<_>>()
        };
        let ring = count(CollectiveAlgo::Ring);
        // Ring: phase 1 sends on every proc but the last, phase 2 on all
        // but id n-2 — every proc sends exactly twice except ids n-2, n-1.
        let ring_sends: u64 = ring.iter().map(|&(s, _)| s).sum();
        assert_eq!(ring_sends, 2 * (n as u64) - 2);
        let rd = count(CollectiveAlgo::RecDouble);
        // Recursive doubling at a power of two: log2(n) sends per proc.
        assert!(rd.iter().all(|&(s, r)| s == 3 && r == 3), "{rd:?}");
    }
}
