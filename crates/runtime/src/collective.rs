//! Collective operations over the whole machine.
//!
//! All collectives run along a binomial tree ("virtual tree topology" in
//! the paper): `array_fold` composes partition results toward the root and
//! then broadcasts the final value back down, and `array_broadcast_part`
//! pushes a partition down the tree. The combine order is fixed by the
//! tree, so results are deterministic even for non-commutative operators —
//! but, as the paper specifies, only associative & commutative operators
//! make the result independent of the machine shape.

use crate::proc::Proc;
use crate::topology::BinomialTree;
use crate::wire::Wire;

/// Tag-space offset separating the gather and release phases of
/// collectives that have both.
const PHASE: u64 = 1 << 62;

impl Proc<'_> {
    /// Broadcast `val` from `root` to every processor. Exactly the root
    /// must pass `Some`; everyone receives the value.
    pub fn broadcast<T: Wire>(&mut self, root: usize, tag: u64, val: Option<T>) -> T {
        let span = self.span_begin();
        let tree = BinomialTree::new(self.nprocs(), root);
        // Send to the largest subtree first: its delivery chain is the
        // longest, so it must leave the (serializing) sender earliest.
        let mut children = tree.children(self.id());
        children.reverse();
        // Flatten once: the root encodes the value a single time and
        // every interior node forwards the payload it received, so one
        // buffer crosses the whole tree by pointer clones (or, for the
        // short payloads typical of fold results, by inline copies that
        // never touch the heap). The encoding is deterministic, so
        // forwarded bytes are identical to what a re-flatten would
        // produce.
        let (v, payload) = if self.id() == root {
            let v = val.expect("broadcast root must supply a value");
            let payload = if children.is_empty() { None } else { Some(self.encode(&v)) };
            (v, payload)
        } else {
            assert!(val.is_none(), "non-root processor supplied a broadcast value");
            let parent = tree.parent(self.id()).expect("non-root has a parent");
            let recv_cpu = self.cost().recv_cpu;
            let env = self.recv_envelope(parent, tag, recv_cpu);
            (self.decode_or_panic(&env), Some(env.bytes))
        };
        if let Some(payload) = payload {
            for child in children {
                self.send_shared(child, tag, payload.clone());
            }
        }
        self.span_end("broadcast", span);
        v
    }

    /// Reduce every processor's `mine` to the root with `combine`,
    /// charging `op_cycles` per combine. Returns `Some` only at the root.
    pub fn reduce<T, F>(
        &mut self,
        root: usize,
        tag: u64,
        mine: T,
        mut combine: F,
        op_cycles: u64,
    ) -> Option<T>
    where
        T: Wire,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let tree = BinomialTree::new(self.nprocs(), root);
        let mut acc = mine;
        // Children arrive in reverse round order: the child with the
        // largest subtree reports last.
        let mut children = tree.children(self.id());
        children.reverse();
        for child in children {
            let theirs: T = self.recv(child, tag);
            self.charge(op_cycles);
            acc = combine(acc, theirs);
        }
        let out = match tree.parent(self.id()) {
            Some(parent) => {
                self.send(parent, tag, &acc);
                None
            }
            None => Some(acc),
        };
        self.span_end("reduce", span);
        out
    }

    /// Reduce to `root` and broadcast the result back to every processor
    /// — the communication structure of the paper's `array_fold`, whose
    /// result is "broadcasted from the root along the tree edges to all
    /// other processors".
    pub fn allreduce<T, F>(&mut self, tag: u64, mine: T, combine: F, op_cycles: u64) -> T
    where
        T: Wire + Clone,
        F: FnMut(T, T) -> T,
    {
        let span = self.span_begin();
        let root = 0;
        let reduced = self.reduce(root, tag, mine, combine, op_cycles);
        let out = if self.id() == root {
            let v = reduced.expect("root holds the reduction");
            self.broadcast(root, tag | PHASE, Some(v))
        } else {
            self.broadcast(root, tag | PHASE, None)
        };
        self.span_end("allreduce", span);
        out
    }

    /// Synchronize all processors: no processor continues (in virtual
    /// time) before every processor has arrived.
    pub fn barrier(&mut self, tag: u64) {
        // Gather arrival times to the root, then release everyone at the
        // synchronized time. Virtual clocks advance through the message
        // arrival rule, so the barrier cost reflects two tree traversals.
        let _ = self.allreduce(tag, 0u8, |_, _| 0u8, 0);
    }

    /// Gather each processor's value at the root; `None` elsewhere.
    /// The result vector is indexed by processor id.
    pub fn gather<T: Wire>(&mut self, root: usize, tag: u64, mine: T) -> Option<Vec<T>> {
        let n = self.nprocs();
        let reduced = self.reduce(
            root,
            tag,
            vec![(self.id(), mine.to_bytes())],
            |mut a, b| {
                a.extend(b);
                a
            },
            0,
        );
        reduced.map(|pairs| {
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (id, bytes) in pairs {
                slots[id] = Some(T::from_bytes(&bytes).expect("gather payload decodes"));
            }
            slots
                .into_iter()
                .enumerate()
                .map(|(id, v)| v.unwrap_or_else(|| panic!("gather missing value from {id}")))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::CostModel;
    use crate::machine::{Machine, MachineConfig};

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::procs(n).unwrap())
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for n in [1, 2, 3, 4, 7, 8, 16] {
            let m = machine(n);
            let run = m.run(|p| {
                let v = if p.id() == 0 { Some(42u32) } else { None };
                p.broadcast(0, 5, v)
            });
            assert!(run.results.iter().all(|&v| v == 42), "n={n}");
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let m = machine(8);
        let run = m.run(|p| {
            let v = if p.id() == 5 { Some(99u32) } else { None };
            p.broadcast(5, 5, v)
        });
        assert!(run.results.iter().all(|&v| v == 99));
    }

    #[test]
    fn reduce_sums() {
        for n in [1, 2, 5, 8, 16, 64] {
            let m = machine(n);
            let run = m.run(|p| p.reduce(0, 7, p.id() as u64, |a, b| a + b, 10));
            let expect = (n as u64 * (n as u64 - 1)) / 2;
            assert_eq!(run.results[0], Some(expect), "n={n}");
            assert!(run.results[1..].iter().all(|r| r.is_none()));
        }
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        for n in [2, 3, 8, 32] {
            let m = machine(n);
            let run = m.run(|p| p.allreduce(11, (p.id() + 1) as u64, |a, b| a.max(b), 5));
            assert!(run.results.iter().all(|&v| v == n as u64), "n={n}");
        }
    }

    #[test]
    fn gather_collects_in_id_order() {
        let m = machine(6);
        let run = m.run(|p| p.gather(0, 13, (p.id() as u32) * 10));
        assert_eq!(run.results[0].as_deref(), Some(&[0u32, 10, 20, 30, 40, 50][..]));
        assert!(run.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn barrier_synchronizes_virtual_clocks() {
        let m = machine(4);
        let run = m.run(|p| {
            // Skewed compute before the barrier.
            p.charge(1_000_000 * (p.id() as u64));
            p.barrier(17);
            p.now()
        });
        // After the barrier nobody's clock may be before the slowest
        // processor's pre-barrier time.
        let slowest_compute = 3_000_000u64;
        for &t in &run.results {
            assert!(t >= slowest_compute, "clock {t} precedes barrier release");
        }
    }

    #[test]
    fn broadcast_latency_scales_with_tree_depth() {
        let cost = CostModel::t800();
        let time = |n: usize| {
            let m = Machine::new(MachineConfig::procs(n).unwrap());
            m.run(|p| {
                let v = if p.id() == 0 { Some(7u8) } else { None };
                p.broadcast(0, 1, v);
            })
            .report
            .sim_cycles
        };
        let t2 = time(2);
        let t16 = time(16);
        // 16 processors need 4 rounds; 2 need 1. The critical path grows
        // roughly linearly in rounds.
        assert!(t16 > 3 * t2 / 2, "t2={t2} t16={t16}");
        assert!(t16 >= 4 * cost.msg_setup, "tree depth sets a floor");
    }

    #[test]
    fn reduce_deterministic_order_for_noncommutative_op() {
        // The tree fixes the combine order, so even a non-commutative
        // operator yields a reproducible (if shape-dependent) result.
        let m = machine(8);
        let a = m.run(|p| {
            p.reduce(
                0,
                3,
                vec![p.id() as u32],
                |mut x, y| {
                    x.extend(y);
                    x
                },
                0,
            )
        });
        let b = m.run(|p| {
            p.reduce(
                0,
                3,
                vec![p.id() as u32],
                |mut x, y| {
                    x.extend(y);
                    x
                },
                0,
            )
        });
        assert_eq!(a.results[0], b.results[0]);
    }

    #[test]
    #[should_panic(expected = "broadcast root must supply a value")]
    fn broadcast_root_without_value_panics() {
        let m = machine(2);
        let _ = m.run(|p| p.broadcast::<u8>(0, 1, None));
    }

    #[test]
    fn collectives_survive_a_lossy_fault_plan() {
        // Every binomial-tree edge goes through the reliable-delivery
        // layer, so a recoverable plan must not change any collective's
        // value on any processor.
        use crate::fault::FaultPlan;
        let program = |p: &mut crate::proc::Proc<'_>| {
            let b = p.broadcast(0, 1, (p.id() == 0).then_some(7u64));
            let r = p.reduce(0, 2, p.id() as u64, |a, b| a + b, 4);
            let ar = p.allreduce(3, p.id() as u64 + b, |a, b| a.max(b), 4);
            p.barrier(4);
            let g = p.gather(0, 5, (p.id() as u64) << 8);
            (b, r, ar, g)
        };
        for n in [2, 3, 8, 16] {
            let clean = machine(n).run(program);
            let plan =
                FaultPlan::seeded(21).with_drop(0.25).with_dup(0.25).with_delay(0.25, 30_000);
            let faulty =
                Machine::new(MachineConfig::procs(n).unwrap().with_faults(plan)).run(program);
            assert_eq!(faulty.results, clean.results, "n={n}");
            let events: u64 = faulty.report.procs.iter().map(|p| p.stats.fault_events()).sum();
            assert!(events > 0, "n={n}: plan injected nothing");
        }
    }
}
