//! The calibrated cost model.
//!
//! All costs are **virtual cycles** on a 20 MHz T800-class node, matching
//! the Parsytec MC the paper evaluates on. Simulated wall-clock seconds are
//! `cycles / clock_hz`.
//!
//! The constants are calibrated against the absolute run times of the
//! paper's Tables 1 and 2 (see `EXPERIMENTS.md`). The calibration story:
//!
//! * Table 1 implies ≈ 290 cycles for one inner-loop element of the
//!   (min, +) matrix product in compiled Skil code and ≈ 240 in equally
//!   optimized C (the paper's measured ≈ 20 % instantiation residue),
//!   with the *older* C comparator at ≈ 320 (unoptimized loop,
//!   synchronous communication, no virtual topologies).
//! * Table 2 implies ≈ 420 cycles for a hand-written Gaussian-elimination
//!   inner element (two loads, float multiply + subtract, store, index
//!   arithmetic) and ≈ 290 cycles for merely *touching* an element through
//!   an instantiated `array_map` functional argument (residual call, two
//!   `Index` loads, compare, store).
//! * The DPFL comparison implies ≈ 1750 cycles per element visited through
//!   a lazy functional skeleton (thunk construction + graph reduction +
//!   boxed values), plus ≈ 800 for boxed `Index` construction where the
//!   argument function takes an index, giving the paper's ≈ 6×
//!   compute-bound ratio, and a
//!   heavier message layer (boxing/flattening of graph nodes) giving the
//!   smaller latency-bound ratios of Table 2's 8×8 column.
//! * The 0.85 s run time of Gaussian elimination at n = 64 on 64
//!   processors is almost pure pivot-row broadcast, which pins the
//!   per-message software cost (sender setup + launch latency + receive)
//!   at ≈ 50 000 cycles (2.5 ms), a realistic Parix-era figure; the T800
//!   links themselves run at ≈ 1.8 MB/s (11 cycles/byte).

/// Per-operation virtual-cycle charges plus the link model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Virtual clock rate in Hz (T800: 20 MHz).
    pub clock_hz: f64,

    // ---- scalar operation costs (cycles) ----
    /// One memory load of a scalar, including its share of address
    /// arithmetic.
    pub load: u64,
    /// One memory store of a scalar.
    pub store: u64,
    /// Integer ALU operation (add, compare, min, ...).
    pub int_op: u64,
    /// Floating-point add/subtract/compare.
    pub flt_add: u64,
    /// Floating-point multiply.
    pub flt_mul: u64,
    /// Floating-point divide.
    pub flt_div: u64,
    /// Residual first-order function call, as left behind by the Skil
    /// instantiation procedure (the paper: instantiated code "usually
    /// contain\[s\] more function calls" than hand-written C).
    pub call: u64,
    /// Per-element cost of a bulk local copy (`array_copy`); partitions
    /// are contiguous so this is a block move.
    pub memcpy_elem: u64,
    /// Per-element cost of index bookkeeping in a skeleton loop
    /// (building the `Index` argument, bounds bookkeeping).
    pub index_calc: u64,

    // ---- functional-host (DPFL) operation costs (cycles) ----
    /// Applying a closure / evaluating a thunk per element in a lazy
    /// functional skeleton implementation.
    pub dpfl_closure: u64,
    /// Boxing or unboxing one scalar value.
    pub dpfl_box: u64,
    /// Amortized per-element heap allocation for the fresh result arrays
    /// a side-effect-free `array_map` must build.
    pub dpfl_alloc_elem: u64,
    /// Building and reducing the graph/thunk structure for one element
    /// visit in the lazy implementation.
    pub dpfl_thunk: u64,
    /// Constructing the boxed `Index` list passed to argument functions
    /// that take an index (skeleton-internal loops like `gen_mult`'s
    /// avoid it, since `gen_add`/`gen_mult` are `$t x $t -> $t`).
    pub dpfl_index_arg: u64,
    /// Extra per-byte cost of flattening boxed graph nodes into messages.
    pub dpfl_per_byte_extra: u64,
    /// Extra per-message software cost of the functional runtime system.
    pub dpfl_msg_extra: u64,

    // ---- link model (cycles) ----
    /// Software setup charged once per message on the critical path
    /// (buffer management, routing decision, kernel entry).
    pub msg_setup: u64,
    /// Transfer cost per payload byte. T800 links ran at 20 Mbit/s
    /// (~1.8 MB/s usable), i.e. ~11 cycles per byte at 20 MHz.
    pub per_byte: u64,
    /// Store-and-forward cost per mesh hop beyond the first.
    pub per_hop: u64,
    /// CPU time the *sender* spends initiating an asynchronous send
    /// (Parix software setup: buffer staging, routing); the transfer
    /// itself overlaps with computation. Sends from one node serialize
    /// on this cost, which is what makes tree broadcasts latency-bound.
    pub send_cpu: u64,
    /// CPU time the receiver spends accepting a message.
    pub recv_cpu: u64,
    /// Per-hop overhead of a *raw* neighbour-link transfer that bypasses
    /// the Parix routing software (the transputer's hardware links; used
    /// by hand-written chain/pipeline communication).
    pub raw_link_overhead: u64,
}

impl CostModel {
    /// The calibrated T800/Parix model used for all paper reproductions.
    pub fn t800() -> Self {
        CostModel {
            clock_hz: 20.0e6,
            load: 40,
            store: 40,
            int_op: 70,
            flt_add: 140,
            flt_mul: 160,
            flt_div: 340,
            call: 100,
            memcpy_elem: 25,
            index_calc: 70,
            dpfl_closure: 400,
            dpfl_box: 120,
            dpfl_alloc_elem: 110,
            dpfl_thunk: 1_000,
            dpfl_index_arg: 800,
            dpfl_per_byte_extra: 3,
            dpfl_msg_extra: 60_000,
            msg_setup: 5_000,
            per_byte: 11,
            per_hop: 2_000,
            send_cpu: 35_000,
            recv_cpu: 10_000,
            raw_link_overhead: 200,
        }
    }

    /// A model with free communication; useful in unit tests that check
    /// pure compute accounting.
    pub fn free_comm() -> Self {
        CostModel {
            msg_setup: 0,
            per_byte: 0,
            per_hop: 0,
            send_cpu: 0,
            recv_cpu: 0,
            raw_link_overhead: 0,
            ..Self::t800()
        }
    }

    /// A model where every charge is zero; useful in tests that only
    /// check values, not times.
    pub fn zero() -> Self {
        CostModel {
            clock_hz: 20.0e6,
            load: 0,
            store: 0,
            int_op: 0,
            flt_add: 0,
            flt_mul: 0,
            flt_div: 0,
            call: 0,
            memcpy_elem: 0,
            index_calc: 0,
            dpfl_closure: 0,
            dpfl_box: 0,
            dpfl_alloc_elem: 0,
            dpfl_thunk: 0,
            dpfl_index_arg: 0,
            dpfl_per_byte_extra: 0,
            dpfl_msg_extra: 0,
            msg_setup: 0,
            per_byte: 0,
            per_hop: 0,
            send_cpu: 0,
            recv_cpu: 0,
            raw_link_overhead: 0,
        }
    }

    /// Per-element overhead of visiting one element through a lazy
    /// functional skeleton: closure application on boxed values, result
    /// boxing, fresh-array allocation, and thunk/graph reduction.
    /// Calibrated at ≈ 1750 cycles, which reproduces the paper's ≈ 6x
    /// DPFL/Skil compute-bound ratio (see EXPERIMENTS.md).
    pub fn dpfl_elem_overhead(&self) -> u64 {
        self.dpfl_closure + 2 * self.dpfl_box + self.dpfl_alloc_elem + self.dpfl_thunk
    }

    /// Convert a cycle count to simulated seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Transit time of a message of `bytes` payload over `hops` mesh hops,
    /// excluding the sender-side CPU charge.
    pub fn transit(&self, bytes: usize, hops: usize) -> u64 {
        self.msg_setup + self.per_byte * bytes as u64 + self.per_hop * hops.max(1) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::t800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t800_seconds() {
        let c = CostModel::t800();
        assert!((c.seconds(20_000_000) - 1.0).abs() < 1e-12);
        assert!((c.seconds(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn transit_components() {
        let c = CostModel::t800();
        assert_eq!(c.transit(0, 1), c.msg_setup + c.per_hop);
        assert_eq!(c.transit(100, 3), c.msg_setup + 100 * c.per_byte + 3 * c.per_hop);
        // hops are clamped to at least one
        assert_eq!(c.transit(0, 0), c.transit(0, 1));
    }

    #[test]
    fn zero_model_is_zero() {
        let c = CostModel::zero();
        assert_eq!(c.transit(1000, 10), 0);
        assert_eq!(c.load + c.store + c.int_op + c.flt_add, 0);
    }

    #[test]
    fn free_comm_keeps_compute() {
        let c = CostModel::free_comm();
        assert_eq!(c.transit(1000, 10), 0);
        assert_eq!(c.flt_mul, CostModel::t800().flt_mul);
    }

    #[test]
    fn default_is_t800() {
        assert_eq!(CostModel::default(), CostModel::t800());
    }
}
