//! Stackful coroutines for the event-driven scheduler.
//!
//! Each simulated processor runs as a resumable task: an ordinary Rust
//! closure executing on its own private stack, suspended at blocking
//! points (mailbox waits) by swapping the callee-saved register context
//! back to the scheduler worker that resumed it. This is what lets one
//! host thread multiplex thousands of virtual processors — a parked
//! processor costs a few KB of touched stack instead of an OS thread.
//!
//! The context switch is the classic callee-saved-register swap
//! (x86-64 System V and AArch64 AAPCS variants below, selected by
//! target). It is a plain `extern "C"` call, so the compiler already
//! assumes caller-saved registers are clobbered; the assembly saves the
//! callee-saved set on the outgoing stack and restores it from the
//! incoming one. Panics never cross the switch boundary: every task body
//! is wrapped in `catch_unwind` *inside* the coroutine, so an unwind
//! (including the simulator's structured `SimAbort`) stays on the
//! coroutine's own stack.

use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Context switch primitive
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    ".text",
    // skil_coro_switch(save: *mut usize, load: *const usize)
    // Saves the current callee-saved context on the current stack,
    // stores the resulting stack pointer through `save`, then installs
    // the stack pointer read through `load` and restores its context.
    ".globl skil_coro_switch",
    ".p2align 4",
    "skil_coro_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, [rsi]",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    // First activation of a coroutine: the prepared stack "returns"
    // here with r12 = task env pointer and r13 = entry function.
    ".globl skil_coro_boot",
    ".p2align 4",
    "skil_coro_boot:",
    "mov rdi, r12",
    "call r13",
    // The entry function never returns (it parks on a final yield);
    // trap hard if that invariant is ever broken.
    "ud2",
);

#[cfg(target_arch = "aarch64")]
std::arch::global_asm!(
    ".text",
    ".globl skil_coro_switch",
    ".p2align 4",
    "skil_coro_switch:",
    "sub sp, sp, #160",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8,  d9,  [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "ldr x9, [x1]",
    "mov sp, x9",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8,  d9,  [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "ret",
    // First activation: x19 = task env pointer, x20 = entry function.
    ".globl skil_coro_boot",
    ".p2align 4",
    "skil_coro_boot:",
    "mov x0, x19",
    "blr x20",
    "brk #0",
);

/// Whether this build has a coroutine context switch for the target.
/// On other targets the machine falls back to the thread scheduler.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
extern "C" {
    fn skil_coro_switch(save: *mut usize, load: *const usize);
    fn skil_coro_boot();
}

/// Fallback stubs so non-{x86_64, aarch64} targets still compile; the
/// scheduler never constructs tasks there ([`SUPPORTED`] is false).
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[allow(clippy::missing_safety_doc)]
mod stubs {
    pub unsafe fn skil_coro_switch(_save: *mut usize, _load: *const usize) {
        unreachable!("coroutines unsupported on this target")
    }
    pub unsafe fn skil_coro_boot() {
        unreachable!("coroutines unsupported on this target")
    }
}
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
use stubs::{skil_coro_boot, skil_coro_switch};

// ---------------------------------------------------------------------------
// Stacks
// ---------------------------------------------------------------------------

/// Default coroutine stack size: matches the 8 MiB the thread scheduler
/// gives each processor worker, so deep divide&conquer recursion behaves
/// identically under both schedulers. Only touched pages are committed,
/// so thousands of mostly-idle tasks cost virtual address space, not RSS.
const DEFAULT_STACK: usize = 8 * 1024 * 1024;

/// Coroutine stack size in bytes (`SKIL_TASK_STACK` override, floored at
/// 64 KiB so a task can always at least panic with a diagnostic).
pub(crate) fn stack_size() -> usize {
    std::env::var("SKIL_TASK_STACK")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(64 * 1024))
        .unwrap_or(DEFAULT_STACK)
}

/// A heap-allocated coroutine stack. Alignment is 16 bytes (both ABIs'
/// stack alignment); large allocations come from `mmap` under glibc, so
/// untouched pages stay uncommitted.
pub(crate) struct CoroStack {
    ptr: *mut u8,
    size: usize,
}

// The stack is plain memory owned by its task; tasks migrate between
// scheduler workers only through the ready queue's mutex.
unsafe impl Send for CoroStack {}

impl CoroStack {
    pub(crate) fn new(size: usize) -> Self {
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("stack layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "coroutine stack allocation failed ({size} bytes)");
        CoroStack { ptr, size }
    }

    /// One past the highest usable address, 16-aligned.
    fn top(&self) -> usize {
        (self.ptr as usize + self.size) & !15
    }
}

impl Drop for CoroStack {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.size, 16).expect("stack layout");
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { std::alloc::dealloc(self.ptr, layout) };
    }
}

/// A reuse pool of coroutine stacks, kept on the `Machine` so repeated
/// runs (benches, parameter sweeps) do not re-`mmap` per run.
pub(crate) struct StackPool {
    size: usize,
    free: Mutex<Vec<CoroStack>>,
}

impl StackPool {
    pub(crate) fn new(size: usize) -> Self {
        StackPool { size, free: Mutex::new(Vec::new()) }
    }

    fn take(&self) -> CoroStack {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_else(|| CoroStack::new(self.size))
    }

    fn put(&self, stack: CoroStack) {
        if stack.size == self.size {
            self.free.lock().unwrap_or_else(|e| e.into_inner()).push(stack);
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// Why a task yielded back to its scheduler worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldReason {
    /// Blocked waiting for a `(src, tag)` message; `vnow` is the task's
    /// virtual clock at the block point (the ready-queue priority when
    /// it is woken).
    Blocked { src: usize, tag: u64, vnow: u64 },
    /// The task body ran to completion (its outcome slot is written).
    Done,
}

/// What a resume means to the blocked task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeKind {
    /// Re-check the mailbox / abort flags (deposit, poison, peer-down).
    Normal,
    /// The scheduler found every live task blocked with nothing in
    /// flight: report a suspected deadlock from this wait.
    Deadlock,
}

/// Per-task switch state: the two saved stack pointers plus the
/// yield/wake mailboxes between the task and its current worker.
///
/// Safety protocol: a task is *owned* by exactly one scheduler worker at
/// a time — from the moment it is popped off the ready queue (or
/// created) until its yield returns to that worker, only that worker
/// touches the frame. Ownership transfers happen exclusively through
/// mutex-protected hand-offs (the ready queue, or a mailbox's bucket
/// lock for the parked-waiter registration), which provide the required
/// happens-before edges for these plain cells.
#[derive(Debug)]
pub(crate) struct TaskFrame {
    coro_sp: UnsafeCell<usize>,
    caller_sp: UnsafeCell<usize>,
    reason: Cell<YieldReason>,
    wake: Cell<WakeKind>,
}

// SAFETY: see the ownership protocol above — all cross-thread access is
// ordered by the scheduler's mutexes.
unsafe impl Sync for TaskFrame {}
unsafe impl Send for TaskFrame {}

impl TaskFrame {
    /// Suspend the calling coroutine until the scheduler resumes it,
    /// reporting `Blocked { src, tag, vnow }` to the worker. Returns the
    /// wake kind ([`WakeKind::Normal`] unless a waker called
    /// [`TaskFrame::set_wake`] before making the task ready), resetting
    /// the cell to `Normal` for the next cycle.
    ///
    /// Must only be called from inside the task's coroutine.
    pub(crate) fn yield_blocked(&self, src: usize, tag: u64, vnow: u64) -> WakeKind {
        self.reason.set(YieldReason::Blocked { src, tag, vnow });
        // SAFETY: called on the coroutine's own stack; the paired
        // pointers are only used by this task/worker pair (see the
        // ownership protocol in the type docs).
        unsafe { skil_coro_switch(self.coro_sp.get(), self.caller_sp.get()) };
        self.wake.replace(WakeKind::Normal)
    }

    /// Tag the task's next wake. Must be called between clearing the
    /// task's parked-waiter registration (which confers ownership) and
    /// pushing it onto the ready queue.
    pub(crate) fn set_wake(&self, wake: WakeKind) {
        self.wake.set(wake);
    }

    fn yield_done(&self) -> ! {
        loop {
            self.reason.set(YieldReason::Done);
            // SAFETY: as in `yield_blocked`. The scheduler never resumes
            // a task after observing `Done`; the loop is a hard backstop.
            unsafe { skil_coro_switch(self.coro_sp.get(), self.caller_sp.get()) };
        }
    }
}

/// A task body: receives a pointer to its own [`TaskFrame`] (valid for
/// the task's whole lifetime) through which it yields at blocking points.
pub(crate) type TaskBody = Box<dyn FnOnce(*const TaskFrame) + Send + 'static>;

/// Boxed closure argument handed to the coroutine entry point.
struct TaskEnv {
    frame: *const TaskFrame,
    body: Option<TaskBody>,
}

extern "C" fn task_entry(env: *mut TaskEnv) {
    // SAFETY: `env` is the boxed TaskEnv owned by the Task, alive for
    // the coroutine's whole lifetime; the frame pointer likewise.
    let env = unsafe { &mut *env };
    if let Some(body) = env.body.take() {
        let frame = env.frame;
        // The body carries its own catch_unwind and outcome reporting;
        // this outer catch only guarantees no unwind ever reaches the
        // assembly boot frame (which has no unwind tables).
        let _ = catch_unwind(AssertUnwindSafe(move || body(frame)));
    }
    // SAFETY: frame outlives the coroutine.
    unsafe { &*env.frame }.yield_done()
}

/// One resumable task: a prepared coroutine stack plus its switch frame.
pub(crate) struct Task {
    frame: Box<TaskFrame>,
    env: Box<TaskEnv>,
    stack: CoroStack,
}

// SAFETY: scheduler workers share `&[Task]`, but the ownership protocol
// on [`TaskFrame`] guarantees at most one worker touches a given task at
// a time, with hand-offs ordered by the scheduler's mutexes. The boxed
// env (and the `Send` body inside it) only ever runs on the owning
// worker's resume.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Build a task whose first resume starts `body` on `pool`'s stack.
    pub(crate) fn new(pool: &StackPool, body: TaskBody) -> Self {
        let stack = pool.take();
        let frame = Box::new(TaskFrame {
            coro_sp: UnsafeCell::new(0),
            caller_sp: UnsafeCell::new(0),
            reason: Cell::new(YieldReason::Done),
            wake: Cell::new(WakeKind::Normal),
        });
        let mut env = Box::new(TaskEnv { frame: &*frame, body: Some(body) });
        // Prepare the stack so the first switch "returns" into
        // `skil_coro_boot` with the entry function and env pointer in
        // the callee-saved registers the boot shim expects.
        let top = stack.top();
        unsafe {
            #[cfg(target_arch = "x86_64")]
            {
                // Layout popped by skil_coro_switch: r15 r14 r13 r12 rbx
                // rbp, then `ret` to skil_coro_boot (leaving rsp 16-aligned
                // at boot entry, so `call` re-establishes ABI alignment).
                let sp = top - 7 * 8;
                let s = sp as *mut usize;
                s.add(0).write(0); // r15
                s.add(1).write(0); // r14
                s.add(2).write(task_entry as *const () as usize); // r13
                s.add(3).write(&mut *env as *mut TaskEnv as usize); // r12
                s.add(4).write(0); // rbx
                s.add(5).write(0); // rbp
                s.add(6).write(skil_coro_boot as *const () as usize); // ret target
                frame.coro_sp.get().write(sp);
            }
            #[cfg(target_arch = "aarch64")]
            {
                // Layout loaded by skil_coro_switch: x19..x30 + d8..d15,
                // with x30 (lr) = skil_coro_boot so `ret` enters the shim.
                let sp = top - 160;
                let s = sp as *mut usize;
                for i in 0..20 {
                    s.add(i).write(0);
                }
                s.add(0).write(&mut *env as *mut TaskEnv as usize); // x19
                s.add(1).write(task_entry as *const () as usize); // x20
                s.add(11).write(skil_coro_boot as *const () as usize); // x30
                frame.coro_sp.get().write(sp);
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                let _ = top;
                unreachable!("coroutines unsupported on this target");
            }
        }
        Task { frame, env, stack }
    }

    /// Run the task until its next yield. The wake kind delivered to a
    /// task blocked in [`TaskFrame::yield_blocked`] is whatever the
    /// waker left via [`TaskFrame::set_wake`] (default `Normal`). Must
    /// only be called by the worker that currently owns the task.
    pub(crate) fn resume(&self) -> YieldReason {
        // SAFETY: exclusive ownership by the calling worker (scheduler
        // invariant); the coroutine context was prepared in `new` or
        // saved by a previous yield.
        unsafe { skil_coro_switch(self.frame.caller_sp.get(), self.frame.coro_sp.get()) };
        self.frame.reason.get()
    }

    /// The switch frame, for handing to the task's `Proc`.
    pub(crate) fn frame(&self) -> &TaskFrame {
        &self.frame
    }

    /// Recycle the stack of a finished task into `pool`.
    pub(crate) fn recycle(self, pool: &StackPool) {
        debug_assert_eq!(self.frame.reason.get(), YieldReason::Done);
        drop(self.env);
        pool.put(self.stack);
    }
}

#[cfg(all(test, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn task_runs_to_completion_across_yields() {
        let pool = StackPool::new(256 * 1024);
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let body: TaskBody = Box::new(move |frame| {
            // SAFETY: the frame is owned by the resuming Task.
            let frame = unsafe { &*frame };
            log2.lock().unwrap().push(1);
            let w = frame.yield_blocked(7, 9, 123);
            assert_eq!(w, WakeKind::Normal);
            log2.lock().unwrap().push(2);
            let w = frame.yield_blocked(8, 10, 456);
            assert_eq!(w, WakeKind::Deadlock);
            log2.lock().unwrap().push(3);
        });
        let task = Task::new(&pool, body);

        match task.resume() {
            YieldReason::Blocked { src: 7, tag: 9, vnow: 123 } => {}
            other => panic!("unexpected yield {other:?}"),
        }
        match task.resume() {
            YieldReason::Blocked { src: 8, tag: 10, vnow: 456 } => {}
            other => panic!("unexpected yield {other:?}"),
        }
        task.frame().set_wake(WakeKind::Deadlock);
        assert_eq!(task.resume(), YieldReason::Done);
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
        task.recycle(&pool);
    }

    #[test]
    fn panicking_body_is_contained() {
        let pool = StackPool::new(256 * 1024);
        let body: TaskBody = Box::new(|_| {
            // The scheduler's real bodies catch their own panics; prove
            // the entry-point backstop contains one that escapes.
            panic!("deliberate coroutine panic");
        });
        let task = Task::new(&pool, body);
        assert_eq!(task.resume(), YieldReason::Done);
        task.recycle(&pool);
    }

    #[test]
    fn thousands_of_tasks_on_one_thread() {
        let pool = StackPool::new(128 * 1024);
        let counter = Arc::new(AtomicUsize::new(0));
        let n = 4096;
        let tasks: Vec<Task> = (0..n)
            .map(|_| {
                let c = Arc::clone(&counter);
                Task::new(
                    &pool,
                    Box::new(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                )
            })
            .collect();
        for t in &tasks {
            assert_eq!(t.resume(), YieldReason::Done);
        }
        assert_eq!(counter.load(Ordering::Relaxed), n);
        for t in tasks {
            t.recycle(&pool);
        }
    }
}
