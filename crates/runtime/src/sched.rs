//! The discrete-event scheduler: thousands of virtual processors on a
//! small, fixed worker pool.
//!
//! Each processor is a coroutine [`Task`](crate::coro::Task). A ready
//! queue — a binary heap ordered by the task's virtual clock (processor
//! id as the deterministic tie-break) — feeds a pool of host workers;
//! a task runs until it blocks on a `(src, tag)` receive, parks in its
//! mailbox, and is made ready again by the deposit that matches it (or
//! by a poison / peer-down / deadlock wake). Virtual time cannot observe
//! any of this: arrival timestamps are computed analytically at the
//! sender, so clocks advance identically under any resume order — the
//! same argument that made `SKIL_WORKER_THREADS` a pure host throttle
//! (DESIGN.md §13 spells it out; the golden tests pin it).
//!
//! Wakeup protocol (all transitions hand off through a mutex, so frame
//! state is ordered):
//!
//! * block: the task yields `Blocked{src, tag}`; its worker registers it
//!   in the mailbox under the bucket lock *after* the context is saved,
//!   re-checking the queue and abort flags so no deposit is lost.
//! * deposit: `Mailbox::put` clears a matching registration under the
//!   same bucket lock and the sender pushes the receiver onto the ready
//!   heap at its wake time.
//! * abort: poison / mark-down sweeps every mailbox, unparking matching
//!   waiters; resumed tasks re-run their receive check and observe the
//!   flag.
//! * deadlock: every worker idle + empty heap + live tasks ⇒ no wake can
//!   be in flight; the lowest-id parked task is resumed with
//!   [`WakeKind::Deadlock`] and reports the same blocked-`(src, tag)`-
//!   with-pending-envelopes diagnostic the thread scheduler produces on
//!   its timeout.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::coro::{Task, WakeKind, YieldReason};
use crate::mailbox::Mailbox;
use crate::proc::Shared;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared state of one simulation's event scheduler. Intentionally
/// `'static` (task handles are plain indices) so `Shared` can hold it
/// behind an `Arc` and wake parked tasks from abort paths.
#[derive(Debug)]
pub(crate) struct EventSched {
    state: Mutex<SchedState>,
    cond: Condvar,
    /// Each task's virtual clock as of its last block, published by its
    /// worker *before* the mailbox registration — so any waker that
    /// clears the registration reads a current value for the ready-heap
    /// priority.
    vnow: Vec<AtomicU64>,
}

#[derive(Debug)]
struct SchedState {
    /// Min-heap of `(virtual wake time, task id)`.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Tasks not yet `Done`.
    live: usize,
    /// Workers currently parked in `next_ready`.
    idle: usize,
    /// Total workers participating in this run.
    workers: usize,
}

impl EventSched {
    pub(crate) fn new(tasks: usize, workers: usize) -> Self {
        EventSched {
            state: Mutex::new(SchedState {
                ready: BinaryHeap::with_capacity(tasks),
                live: tasks,
                idle: 0,
                workers,
            }),
            cond: Condvar::new(),
            vnow: (0..tasks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Make task `id` runnable at virtual time `at`. The condvar signal
    /// is skipped when no worker is parked in `next_ready` — `idle` is
    /// only ever changed under the state lock, and a worker that is
    /// about to park re-checks the heap under that lock, so a push it
    /// could observe is a push it will pop. On a single-worker run
    /// (sends happen *on* the only worker) every push takes this
    /// lock-only path.
    pub(crate) fn push_ready(&self, id: usize, at: u64) {
        let notify = {
            let mut st = lock(&self.state);
            st.ready.push(Reverse((at, id)));
            st.idle > 0
        };
        if notify {
            self.cond.notify_one();
        }
    }

    /// The clock task `id` published at its last block.
    pub(crate) fn vnow_hint(&self, id: usize) -> u64 {
        self.vnow[id].load(Ordering::Relaxed)
    }

    /// Wake parked tasks across `mailboxes` whose awaited *source*
    /// matches `pred` — the abort half of the wakeup protocol, called by
    /// `Shared::poison_all` / `Shared::mark_down`. Resumed tasks re-run
    /// their receive check and observe the abort flag themselves.
    pub(crate) fn wake_parked(&self, mailboxes: &[Mailbox], pred: impl Fn(usize) -> bool) {
        for (id, mb) in mailboxes.iter().enumerate() {
            if mb.unpark(|(src, _)| pred(src)) {
                self.push_ready(id, self.vnow_hint(id));
            }
        }
    }

    /// Pop the next runnable task, parking until one appears. Returns
    /// `None` once every task is done. `deadlock` is invoked — with the
    /// scheduler lock released — when every worker is idle with an empty
    /// heap but live tasks remain; it must make at least one task ready
    /// (or the wait resumes and tries again).
    fn next_ready(&self, deadlock: impl Fn()) -> Option<usize> {
        let mut st = lock(&self.state);
        loop {
            if let Some(Reverse((_, id))) = st.ready.pop() {
                return Some(id);
            }
            if st.live == 0 {
                self.cond.notify_all();
                return None;
            }
            st.idle += 1;
            if st.idle == st.workers {
                // Every live task is parked and no worker can be about
                // to wake one: a genuine deadlock. Resolve it outside
                // the scheduler lock (the victim wake takes bucket
                // locks, and bucket holders never wait on this lock).
                st.idle -= 1;
                drop(st);
                deadlock();
                st = lock(&self.state);
                continue;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            st.idle -= 1;
        }
    }

    /// Rearm a scheduler kept in a machine's run arena for another run
    /// of the same shape: every task live again, empty heap, clocks at
    /// zero. Callers only invoke this between runs, when no worker is
    /// active on the scheduler.
    pub(crate) fn reset(&self) {
        let mut st = lock(&self.state);
        st.ready.clear();
        st.live = self.vnow.len();
        st.idle = 0;
        for v in &self.vnow {
            v.store(0, Ordering::Relaxed);
        }
    }

    fn task_done(&self) {
        let mut st = lock(&self.state);
        st.live -= 1;
        if st.live == 0 {
            drop(st);
            self.cond.notify_all();
        }
    }
}

/// Run scheduler work on the calling worker thread until every task of
/// the simulation has completed.
pub(crate) fn worker_loop(sched: &EventSched, tasks: &[Task], shared: &Shared) {
    loop {
        let deadlock = || wake_deadlock_victim(sched, tasks, shared);
        let Some(id) = sched.next_ready(deadlock) else { return };
        match tasks[id].resume() {
            YieldReason::Done => sched.task_done(),
            YieldReason::Blocked { src, tag, vnow } => {
                block_task(sched, shared, id, src, tag, vnow)
            }
        }
    }
}

/// Complete a task's block: publish its clock, register it in its
/// mailbox, and close the races with concurrent deposits and aborts.
fn block_task(sched: &EventSched, shared: &Shared, id: usize, src: usize, tag: u64, vnow: u64) {
    sched.vnow[id].store(vnow, Ordering::Relaxed);
    let mb = &shared.mailboxes[id];
    if !mb.park(src, tag) {
        // A matching envelope was deposited while the task was running:
        // it never actually blocks.
        sched.push_ready(id, vnow);
        return;
    }
    // An abort sweep that scanned this mailbox before the registration
    // would miss the task; whoever clears the registration owns the
    // wake, so checking the flags afterwards closes the race exactly
    // once.
    if (shared.poison.load(Ordering::Acquire) || shared.downs[src].load(Ordering::Acquire))
        && mb.unpark(|_| true)
    {
        sched.push_ready(id, vnow);
    }
}

/// Resolve a structural deadlock: wake the lowest-id parked task with
/// [`WakeKind::Deadlock`] so it raises the standard diagnostic.
fn wake_deadlock_victim(sched: &EventSched, tasks: &[Task], shared: &Shared) {
    for (id, mb) in shared.mailboxes.iter().enumerate() {
        if mb.unpark(|_| true) {
            tasks[id].frame().set_wake(WakeKind::Deadlock);
            sched.push_ready(id, sched.vnow_hint(id));
            return;
        }
    }
    // No parked task found: a racing wake is mid-flight after all; the
    // caller re-enters the wait and will observe it.
}
