//! Run reports: what a simulation measured.
//!
//! Beyond whole-run totals, a report carries three structured views used
//! by the observability exports (see [`crate::export`]):
//!
//! * per-span traffic counters on every [`TraceEvent`], aggregated into
//!   per-skeleton metrics by [`RunReport::skeleton_metrics`];
//! * a per-run src→dst [`CommMatrix`] assembled from the [`CommRow`]s
//!   the processors record while tracing is enabled;
//! * an ASCII timeline ([`RunReport::render_timeline`]) for quick
//!   terminal inspection.

use std::collections::BTreeMap;

/// What a [`TraceEvent`] records. `Span` is the ordinary duration event
/// from the PR 2 span API; the remaining kinds are zero-width instants
/// emitted by the fault-injection / reliable-delivery layer so fault
/// activity is visible in the same trace stream (and in the Chrome
/// export, where they render as instant events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration span (skeleton or user section).
    #[default]
    Span,
    /// A transmission attempt was dropped by the fault plan.
    Drop,
    /// The sender retransmitted after a (virtual-time) ack timeout.
    Retry,
    /// The fault plan duplicated a delivery; the receiver's sequence
    /// numbers later suppress the extra copy.
    Dup,
    /// This processor crashed at its scheduled virtual cycle.
    Crash,
}

/// One traced span of activity on a processor (virtual time), together
/// with the traffic the processor performed *inside* the span. Counters
/// are inclusive: a span that contains nested spans also contains their
/// traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What kind of event this is; fault kinds are zero-width instants.
    pub kind: TraceKind,
    /// Span label (usually a skeleton name).
    pub label: String,
    /// Virtual start cycle.
    pub start: u64,
    /// Virtual end cycle.
    pub end: u64,
    /// Messages sent during the span.
    pub sends: u64,
    /// Messages received during the span.
    pub recvs: u64,
    /// Payload bytes sent during the span.
    pub bytes_sent: u64,
    /// Payload bytes received during the span.
    pub bytes_recvd: u64,
}

impl TraceEvent {
    /// Inclusive virtual cycles spent in the span.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Per-processor activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles charged as computation.
    pub compute: u64,
    /// Cycles spent waiting for messages (receiver idle time).
    pub wait: u64,
    /// Messages sent.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes received. Machine-wide, received bytes must equal
    /// sent bytes once every program has returned (conservation).
    pub bytes_recvd: u64,
    /// Transmission attempts retransmitted by the reliable-delivery
    /// layer (zero unless a fault plan is active).
    pub retries: u64,
    /// Transmission attempts dropped by the fault plan (sender side).
    pub drops: u64,
    /// Duplicate deliveries suppressed by the receiver's sequence
    /// numbers.
    pub dups: u64,
    /// Deliveries that arrived late because the fault plan injected
    /// extra in-flight latency.
    pub delays: u64,
}

impl ProcStats {
    /// Total fault-layer activity on this processor. Zero whenever the
    /// machine runs without a fault plan — pinned by the golden tests.
    pub fn fault_events(&self) -> u64 {
        self.retries + self.drops + self.dups + self.delays
    }
}

/// Host data-plane counters for one processor: how its messages moved on
/// the *host*, as opposed to the virtual-time traffic in [`ProcStats`].
/// Kept out of `ProcStats` deliberately — these depend on the payload
/// representation and the scheduler's delivery path, while `ProcStats`
/// is pinned bit-identical across schedulers by the differential tests.
/// For a fixed machine configuration the counters are still fully
/// deterministic (the payload representation is a pure function of the
/// encoded length, and the delivery path is a pure function of the
/// scheduler), so exports that embed them stay byte-identical across
/// runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Envelopes whose payload travelled inline in the envelope
    /// (≤ [`INLINE_PAYLOAD`](crate::mailbox::INLINE_PAYLOAD) bytes, no
    /// heap allocation).
    pub inline_msgs: u64,
    /// Envelopes whose payload travelled as a shared heap buffer.
    pub heap_msgs: u64,
    /// Envelopes deposited over the scheduler-native path: straight into
    /// the receiver's queue, waking the parked task through the event
    /// scheduler's ready heap — no condvar broadcast.
    pub direct_deliveries: u64,
    /// Envelopes deposited through the condvar mailbox path (the thread
    /// scheduler's delivery mechanism).
    pub condvar_deliveries: u64,
}

impl DataPlaneStats {
    /// Merge another processor's counters into this one.
    pub fn absorb(&mut self, other: &DataPlaneStats) {
        self.inline_msgs += other.inline_msgs;
        self.heap_msgs += other.heap_msgs;
        self.direct_deliveries += other.direct_deliveries;
        self.condvar_deliveries += other.condvar_deliveries;
    }
}

/// One processor's row of the communication matrix: per-peer message and
/// byte counts, indexed by peer processor id. Recorded only while
/// tracing is enabled, so the data plane stays zero-cost otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommRow {
    /// Messages this processor sent to each destination.
    pub sent_msgs: Vec<u64>,
    /// Payload bytes this processor sent to each destination.
    pub sent_bytes: Vec<u64>,
    /// Messages this processor received from each source.
    pub recvd_msgs: Vec<u64>,
    /// Payload bytes this processor received from each source.
    pub recvd_bytes: Vec<u64>,
}

impl CommRow {
    /// An all-zero row for a machine of `n` processors.
    pub fn new(n: usize) -> Self {
        CommRow {
            sent_msgs: vec![0; n],
            sent_bytes: vec![0; n],
            recvd_msgs: vec![0; n],
            recvd_bytes: vec![0; n],
        }
    }
}

/// The machine-wide src→dst communication matrix, assembled from the
/// sender-side [`CommRow`]s. Entry `(src, dst)` counts traffic deposited
/// by `src` addressed to `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    /// Number of processors (the matrix is `n × n`, row-major by source).
    pub n: usize,
    /// Message counts, `msgs[src * n + dst]`.
    pub msgs: Vec<u64>,
    /// Payload byte counts, `bytes[src * n + dst]`.
    pub bytes: Vec<u64>,
}

impl CommMatrix {
    /// Messages sent from `src` to `dst`.
    pub fn msgs_at(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.n + dst]
    }

    /// Payload bytes sent from `src` to `dst`.
    pub fn bytes_at(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }
}

/// Aggregated per-skeleton (per-span-label) metrics over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkeletonMetrics {
    /// Number of spans with this label across all processors.
    pub invocations: u64,
    /// Inclusive virtual cycles summed over those spans.
    pub cycles: u64,
    /// Messages sent inside those spans.
    pub sends: u64,
    /// Messages received inside those spans.
    pub recvs: u64,
    /// Payload bytes sent inside those spans.
    pub bytes_sent: u64,
    /// Payload bytes received inside those spans.
    pub bytes_recvd: u64,
}

/// Final state of one processor.
#[derive(Debug, Clone, Default)]
pub struct ProcReport {
    /// The processor's virtual clock when its program returned.
    pub finished_at: u64,
    /// Activity counters.
    pub stats: ProcStats,
    /// Host data-plane counters (delivery path, payload representation).
    pub data_plane: DataPlaneStats,
    /// Traced spans (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Per-peer traffic row (`None` unless tracing was enabled).
    pub comm: Option<CommRow>,
}

/// The result of simulating a program on the machine.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual cycles at which the last processor finished — the
    /// simulated run time of the program.
    pub sim_cycles: u64,
    /// `sim_cycles` converted to seconds with the machine's clock rate.
    pub sim_seconds: f64,
    /// The machine's virtual clock rate in Hz (maps cycles to wall time
    /// in the exports).
    pub clock_hz: f64,
    /// The physical topology the machine ran on. Exports carry its
    /// canonical spec, and the comm-matrix export annotates every
    /// src→dst pair with the topology's hop metric.
    pub topology: crate::topology::Topology,
    /// Per-processor details, indexed by processor id.
    pub procs: Vec<ProcReport>,
}

impl RunReport {
    /// Sum of all processors' sent messages.
    pub fn total_msgs(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.sends).sum()
    }

    /// Sum of all processors' sent payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.bytes_sent).sum()
    }

    /// Sum of all processors' received payload bytes. Equals
    /// [`total_bytes`](RunReport::total_bytes) for any program that
    /// receives every message it sends.
    pub fn total_bytes_recvd(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.bytes_recvd).sum()
    }

    /// Total compute cycles over all processors.
    pub fn total_compute(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.compute).sum()
    }

    /// Total wait cycles over all processors.
    pub fn total_wait(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.wait).sum()
    }

    /// Machine-wide host data-plane counters, summed over processors.
    pub fn data_plane(&self) -> DataPlaneStats {
        let mut out = DataPlaneStats::default();
        for p in &self.procs {
            out.absorb(&p.data_plane);
        }
        out
    }

    /// Parallel efficiency proxy: average compute share of the critical
    /// path. 1.0 means perfectly balanced pure compute.
    pub fn efficiency(&self) -> f64 {
        if self.sim_cycles == 0 || self.procs.is_empty() {
            return 1.0;
        }
        self.total_compute() as f64 / (self.sim_cycles as f64 * self.procs.len() as f64)
    }

    /// Aggregate the traced spans into per-label skeleton metrics,
    /// ordered by label. Empty unless the run was traced.
    pub fn skeleton_metrics(&self) -> BTreeMap<String, SkeletonMetrics> {
        let mut out: BTreeMap<String, SkeletonMetrics> = BTreeMap::new();
        for p in &self.procs {
            for ev in &p.trace {
                let m = out.entry(ev.label.clone()).or_default();
                m.invocations += 1;
                m.cycles += ev.cycles();
                m.sends += ev.sends;
                m.recvs += ev.recvs;
                m.bytes_sent += ev.bytes_sent;
                m.bytes_recvd += ev.bytes_recvd;
            }
        }
        out
    }

    /// Assemble the src→dst communication matrix from the sender-side
    /// rows. `None` unless every processor recorded a row (i.e. tracing
    /// was enabled for the run).
    pub fn comm_matrix(&self) -> Option<CommMatrix> {
        let n = self.procs.len();
        let mut msgs = vec![0u64; n * n];
        let mut bytes = vec![0u64; n * n];
        for (src, p) in self.procs.iter().enumerate() {
            let row = p.comm.as_ref()?;
            for dst in 0..n {
                msgs[src * n + dst] = row.sent_msgs[dst];
                bytes[src * n + dst] = row.sent_bytes[dst];
            }
        }
        Some(CommMatrix { n, msgs, bytes })
    }

    /// Render the traced spans as an ASCII timeline (one row per
    /// processor, `width` columns spanning the whole run). Spans are
    /// marked with the first letter of their label; gaps are idle/wait.
    /// Degenerate widths (< 2 columns) are clamped up to 2.
    pub fn render_timeline(&self, width: usize) -> String {
        use std::fmt::Write;
        let width = width.max(2);
        let mut out = String::new();
        if self.sim_cycles == 0 {
            return "(empty run)\n".into();
        }
        let scale = |t: u64| -> usize {
            ((t as f64 / self.sim_cycles as f64) * (width.saturating_sub(1)) as f64) as usize
        };
        // assign each label a distinct mark: its first letter if free,
        // else the uppercase form, else a digit
        let mut legend: Vec<(String, char)> = Vec::new();
        let mark_of = |label: &str, legend: &mut Vec<(String, char)>| -> char {
            if let Some((_, m)) = legend.iter().find(|(l, _)| l == label) {
                return *m;
            }
            let first = label.chars().next().unwrap_or('?');
            let candidates = [first, first.to_ascii_uppercase()];
            let mut mark = candidates.into_iter().find(|c| !legend.iter().any(|(_, m)| m == c));
            if mark.is_none() {
                mark = ('0'..='9').find(|c| !legend.iter().any(|(_, m)| m == c));
            }
            let mark = mark.unwrap_or('?');
            legend.push((label.to_string(), mark));
            mark
        };
        let mut rows = String::new();
        for (id, p) in self.procs.iter().enumerate() {
            let mut row = vec![' '; width];
            for ev in &p.trace {
                let mark = mark_of(&ev.label, &mut legend);
                let (a, b) = (scale(ev.start), scale(ev.end).max(scale(ev.start)));
                for slot in row.iter_mut().take(b.min(width - 1) + 1).skip(a) {
                    *slot = mark;
                }
            }
            let _ = writeln!(rows, "p{id:<3} |{}|", row.iter().collect::<String>());
        }
        out.push_str(&rows);
        let _ = writeln!(
            out,
            "     0 {:->w$} {:.4}s",
            ">",
            self.sim_seconds,
            w = width.saturating_sub(8)
        );
        for (l, m) in legend {
            let _ = writeln!(out, "     {m} = {l}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Span,
            label: label.into(),
            start,
            end,
            sends: 0,
            recvs: 0,
            bytes_sent: 0,
            bytes_recvd: 0,
        }
    }

    fn report() -> RunReport {
        RunReport {
            sim_cycles: 100,
            sim_seconds: 100.0 / 20e6,
            clock_hz: 20e6,
            topology: crate::topology::Topology::default_for(2).unwrap(),
            procs: vec![
                ProcReport {
                    finished_at: 100,
                    stats: ProcStats {
                        compute: 80,
                        wait: 20,
                        sends: 3,
                        bytes_sent: 64,
                        recvs: 2,
                        bytes_recvd: 16,
                        ..ProcStats::default()
                    },
                    data_plane: DataPlaneStats::default(),
                    trace: vec![TraceEvent {
                        kind: TraceKind::Span,
                        label: "map".into(),
                        start: 0,
                        end: 50,
                        sends: 2,
                        recvs: 1,
                        bytes_sent: 48,
                        bytes_recvd: 8,
                    }],
                    comm: None,
                },
                ProcReport {
                    finished_at: 90,
                    stats: ProcStats {
                        compute: 60,
                        wait: 30,
                        sends: 1,
                        bytes_sent: 16,
                        recvs: 2,
                        bytes_recvd: 64,
                        ..ProcStats::default()
                    },
                    data_plane: DataPlaneStats::default(),
                    trace: vec![],
                    comm: None,
                },
            ],
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_msgs(), 4);
        assert_eq!(r.total_bytes(), 80);
        assert_eq!(r.total_bytes_recvd(), 80);
        assert_eq!(r.total_compute(), 140);
        assert_eq!(r.total_wait(), 50);
    }

    #[test]
    fn efficiency_bounds() {
        let r = report();
        let e = r.efficiency();
        assert!(e > 0.0 && e <= 1.0);
        assert!((e - 140.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degenerate() {
        let r = RunReport {
            sim_cycles: 0,
            sim_seconds: 0.0,
            clock_hz: 20e6,
            topology: crate::topology::Topology::default_for(1).unwrap(),
            procs: vec![],
        };
        assert_eq!(r.efficiency(), 1.0);
        assert!(r.render_timeline(40).contains("empty"));
    }

    #[test]
    fn timeline_renders_spans() {
        let r = report();
        let t = r.render_timeline(40);
        assert!(t.contains("p0"), "{t}");
        assert!(t.contains("m"), "{t}");
        assert!(t.contains("m = map"), "{t}");
    }

    #[test]
    fn timeline_degenerate_widths_do_not_panic() {
        // Regression: `b.min(width - 1)` underflowed for width == 0.
        let r = report();
        for w in [0, 1, 7] {
            let t = r.render_timeline(w);
            assert!(t.contains("p0"), "width {w}: {t}");
            assert!(t.contains("m = map"), "width {w}: {t}");
        }
    }

    #[test]
    fn skeleton_metrics_aggregate_spans() {
        let mut r = report();
        r.procs[1].trace = vec![span("map", 10, 30), span("fold", 30, 90)];
        let m = r.skeleton_metrics();
        assert_eq!(m.len(), 2);
        let map = &m["map"];
        assert_eq!(map.invocations, 2);
        assert_eq!(map.cycles, 50 + 20);
        assert_eq!(map.sends, 2);
        assert_eq!(map.bytes_sent, 48);
        assert_eq!(m["fold"].invocations, 1);
        assert_eq!(m["fold"].cycles, 60);
    }

    #[test]
    fn comm_matrix_requires_rows_everywhere() {
        let mut r = report();
        assert!(r.comm_matrix().is_none());
        let mut row0 = CommRow::new(2);
        row0.sent_msgs[1] = 3;
        row0.sent_bytes[1] = 64;
        let mut row1 = CommRow::new(2);
        row1.sent_msgs[0] = 1;
        row1.sent_bytes[0] = 16;
        r.procs[0].comm = Some(row0);
        r.procs[1].comm = Some(row1);
        let m = r.comm_matrix().expect("both rows recorded");
        assert_eq!(m.msgs_at(0, 1), 3);
        assert_eq!(m.bytes_at(0, 1), 64);
        assert_eq!(m.msgs_at(1, 0), 1);
        assert_eq!(m.msgs_at(0, 0), 0);
        assert_eq!(m.msgs.iter().sum::<u64>(), r.total_msgs());
        assert_eq!(m.bytes.iter().sum::<u64>(), r.total_bytes());
    }
}
