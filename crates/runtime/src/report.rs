//! Run reports: what a simulation measured.

/// One traced span of activity on a processor (virtual time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span label (usually a skeleton name).
    pub label: String,
    /// Virtual start cycle.
    pub start: u64,
    /// Virtual end cycle.
    pub end: u64,
}

/// Per-processor activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles charged as computation.
    pub compute: u64,
    /// Cycles spent waiting for messages (receiver idle time).
    pub wait: u64,
    /// Messages sent.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
}

/// Final state of one processor.
#[derive(Debug, Clone, Default)]
pub struct ProcReport {
    /// The processor's virtual clock when its program returned.
    pub finished_at: u64,
    /// Activity counters.
    pub stats: ProcStats,
    /// Traced spans (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

/// The result of simulating a program on the machine.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual cycles at which the last processor finished — the
    /// simulated run time of the program.
    pub sim_cycles: u64,
    /// `sim_cycles` converted to seconds with the machine's clock rate.
    pub sim_seconds: f64,
    /// Per-processor details, indexed by processor id.
    pub procs: Vec<ProcReport>,
}

impl RunReport {
    /// Sum of all processors' sent messages.
    pub fn total_msgs(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.sends).sum()
    }

    /// Sum of all processors' sent payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.bytes_sent).sum()
    }

    /// Total compute cycles over all processors.
    pub fn total_compute(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.compute).sum()
    }

    /// Total wait cycles over all processors.
    pub fn total_wait(&self) -> u64 {
        self.procs.iter().map(|p| p.stats.wait).sum()
    }

    /// Parallel efficiency proxy: average compute share of the critical
    /// path. 1.0 means perfectly balanced pure compute.
    pub fn efficiency(&self) -> f64 {
        if self.sim_cycles == 0 || self.procs.is_empty() {
            return 1.0;
        }
        self.total_compute() as f64 / (self.sim_cycles as f64 * self.procs.len() as f64)
    }

    /// Render the traced spans as an ASCII timeline (one row per
    /// processor, `width` columns spanning the whole run). Spans are
    /// marked with the first letter of their label; gaps are idle/wait.
    pub fn render_timeline(&self, width: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.sim_cycles == 0 {
            return "(empty run)\n".into();
        }
        let scale = |t: u64| -> usize {
            ((t as f64 / self.sim_cycles as f64) * (width.saturating_sub(1)) as f64) as usize
        };
        // assign each label a distinct mark: its first letter if free,
        // else the uppercase form, else a digit
        let mut legend: Vec<(String, char)> = Vec::new();
        let mark_of = |label: &str, legend: &mut Vec<(String, char)>| -> char {
            if let Some((_, m)) = legend.iter().find(|(l, _)| l == label) {
                return *m;
            }
            let first = label.chars().next().unwrap_or('?');
            let candidates = [first, first.to_ascii_uppercase()];
            let mut mark = candidates.into_iter().find(|c| !legend.iter().any(|(_, m)| m == c));
            if mark.is_none() {
                mark = ('0'..='9').find(|c| !legend.iter().any(|(_, m)| m == c));
            }
            let mark = mark.unwrap_or('?');
            legend.push((label.to_string(), mark));
            mark
        };
        let mut rows = String::new();
        for (id, p) in self.procs.iter().enumerate() {
            let mut row = vec![' '; width];
            for ev in &p.trace {
                let mark = mark_of(&ev.label, &mut legend);
                let (a, b) = (scale(ev.start), scale(ev.end).max(scale(ev.start)));
                for slot in row.iter_mut().take(b.min(width - 1) + 1).skip(a) {
                    *slot = mark;
                }
            }
            let _ = writeln!(rows, "p{id:<3} |{}|", row.iter().collect::<String>());
        }
        out.push_str(&rows);
        let _ = writeln!(
            out,
            "     0 {:->w$} {:.4}s",
            ">",
            self.sim_seconds,
            w = width.saturating_sub(8)
        );
        for (l, m) in legend {
            let _ = writeln!(out, "     {m} = {l}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            sim_cycles: 100,
            sim_seconds: 100.0 / 20e6,
            procs: vec![
                ProcReport {
                    finished_at: 100,
                    stats: ProcStats { compute: 80, wait: 20, sends: 3, bytes_sent: 64, recvs: 2 },
                    trace: vec![TraceEvent { label: "map".into(), start: 0, end: 50 }],
                },
                ProcReport {
                    finished_at: 90,
                    stats: ProcStats { compute: 60, wait: 30, sends: 1, bytes_sent: 16, recvs: 2 },
                    trace: vec![],
                },
            ],
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_msgs(), 4);
        assert_eq!(r.total_bytes(), 80);
        assert_eq!(r.total_compute(), 140);
        assert_eq!(r.total_wait(), 50);
    }

    #[test]
    fn efficiency_bounds() {
        let r = report();
        let e = r.efficiency();
        assert!(e > 0.0 && e <= 1.0);
        assert!((e - 140.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degenerate() {
        let r = RunReport { sim_cycles: 0, sim_seconds: 0.0, procs: vec![] };
        assert_eq!(r.efficiency(), 1.0);
        assert!(r.render_timeline(40).contains("empty"));
    }

    #[test]
    fn timeline_renders_spans() {
        let r = report();
        let t = r.render_timeline(40);
        assert!(t.contains("p0"), "{t}");
        assert!(t.contains("m"), "{t}");
        assert!(t.contains("m = map"), "{t}");
    }
}
