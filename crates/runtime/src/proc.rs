//! The per-processor handle SPMD programs run against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::collective::CollectiveAlgo;
use crate::coro::{TaskFrame, WakeKind};
use crate::cost::CostModel;
use crate::error::{AbortCause, SimAbort};
use crate::fault::{Fate, FaultPlan};
use crate::mailbox::{Envelope, Gate, Mailbox, Payload, RecvOutcome, WaitCtl, INLINE_PAYLOAD};
use crate::report::{CommRow, DataPlaneStats, ProcStats, TraceEvent, TraceKind};
use crate::sched::EventSched;
use crate::topology::{Mesh, Ring, Topology, Torus2d};
use crate::wire::Wire;

/// How many drained encode buffers a processor keeps for reuse. Two is
/// enough for ping-pong traffic; a little slack covers skeletons that
/// hold a few payloads at once (e.g. a fold combining child results).
const SCRATCH_BUFS: usize = 4;

/// Snapshot of a processor's clock and traffic counters at the start of
/// a traced span (see [`Proc::span_begin`]). The matching
/// [`Proc::span_end`] turns the difference into a [`TraceEvent`] with
/// per-span traffic counters.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    start: u64,
    sends: u64,
    recvs: u64,
    bytes_sent: u64,
    bytes_recvd: u64,
}

/// Machine state shared by all processors of one simulation.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) trace: bool,
    pub(crate) mesh: Mesh,
    pub(crate) topo: Topology,
    pub(crate) collective_algo: Option<CollectiveAlgo>,
    pub(crate) cost: CostModel,
    pub(crate) deadlock_timeout: Duration,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) poison: AtomicBool,
    /// The active fault plan ([`FaultPlan::none`] ⇒ the reliable-delivery
    /// layer is bypassed entirely).
    pub(crate) faults: FaultPlan,
    /// Per-processor down flags, set when a processor aborts for a
    /// simulated reason — a fault-model crash/give-up *or* a Skil
    /// runtime error. Receivers blocked on a down peer abort with a
    /// structured `PeerDown` instead of deadlocking, with or without an
    /// active fault plan.
    pub(crate) downs: Vec<AtomicBool>,
    /// Why each down processor went down (diagnostics for `SimFailure`).
    pub(crate) down_causes: Mutex<Vec<Option<AbortCause>>>,
    /// Host-concurrency gate (`SKIL_WORKER_THREADS`), if any. Only the
    /// thread scheduler uses it; the event scheduler bounds host
    /// concurrency by its worker count instead.
    pub(crate) gate: Option<Arc<Gate>>,
    /// The event scheduler driving this run, when the machine runs in
    /// event mode. Deposit and abort paths use it to make parked
    /// receiver tasks ready.
    pub(crate) sched: Option<Arc<EventSched>>,
}

impl Shared {
    /// Poison the machine and wake every receiver blocked on a mailbox so
    /// the abort is observed immediately (no polling interval).
    pub(crate) fn poison_all(&self) {
        self.poison.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            mb.wake_all();
        }
        if let Some(sched) = &self.sched {
            sched.wake_parked(&self.mailboxes, |_| true);
        }
    }

    /// Mark `id` down for a simulated reason and wake every blocked
    /// receiver so waits on it abort promptly with `PeerDown`. Unlike
    /// [`poison_all`](Shared::poison_all) this does not poison the
    /// machine: processors not (transitively) waiting on the down one
    /// finish normally, which keeps the cascade deterministic.
    pub(crate) fn mark_down(&self, id: usize, cause: AbortCause) {
        {
            let mut causes = self.down_causes.lock().unwrap_or_else(|e| e.into_inner());
            causes[id].get_or_insert(cause);
        }
        self.downs[id].store(true, Ordering::Release);
        for mb in &self.mailboxes {
            mb.wake_all();
        }
        if let Some(sched) = &self.sched {
            sched.wake_parked(&self.mailboxes, |src| src == id);
        }
    }
}

/// One simulated processor: a virtual clock, activity counters, and access
/// to the machine's mailboxes. The SPMD program receives `&mut Proc` and
/// runs real Rust code; *virtual* time advances only through [`charge`],
/// sends, and receives.
///
/// [`charge`]: Proc::charge
#[derive(Debug)]
pub struct Proc<'m> {
    id: usize,
    shared: &'m Shared,
    now: u64,
    stats: ProcStats,
    trace: Vec<TraceEvent>,
    /// Per-peer traffic counters (`Some` only while tracing, so the
    /// data plane pays nothing when observability is off).
    comm: Option<CommRow>,
    /// Size of the last encoded payload: the next send pre-allocates its
    /// buffer to this, so steady-state traffic (ring rotations, halo
    /// exchanges) flattens straight into a right-sized buffer with no
    /// growth reallocations.
    encode_cap: usize,
    /// Reusable encode buffers. Inline sends return their buffer here
    /// immediately; heap payloads come back through
    /// [`recycle`](Proc::recycle) once the receiver has drained them and
    /// the `Arc` is unique again — steady-state traffic then allocates
    /// nothing per message.
    scratch: Vec<Vec<u8>>,
    /// Host data-plane counters (delivery path, payload representation).
    dp: DataPlaneStats,
    /// Whether a fault plan is active (cached off the shared state so
    /// the hot paths branch on a local bool).
    faults_active: bool,
    /// Virtual cycle at which this processor crashes under the fault
    /// plan; `u64::MAX` when no crash is scheduled, so the hot-path
    /// check is a single always-false compare.
    crash_limit: u64,
    /// Next sequence number to assign per `(dst, tag)` flow.
    send_seq: HashMap<(usize, u64), u64>,
    /// Next sequence number expected per `(src, tag)` flow; envelopes
    /// below it are duplicates and are suppressed.
    recv_seq: HashMap<(usize, u64), u64>,
    /// The coroutine switch frame, when this processor runs as an event
    /// task: blocking receives yield through it back to the scheduler
    /// worker instead of parking the host thread on a condvar.
    parker: Option<&'m TaskFrame>,
}

impl<'m> Proc<'m> {
    pub(crate) fn new(id: usize, shared: &'m Shared) -> Self {
        let comm = shared.trace.then(|| CommRow::new(shared.mesh.procs()));
        let faults_active = shared.faults.is_active();
        let crash_limit = if faults_active {
            shared.faults.crash_cycle(id).unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        Proc {
            id,
            shared,
            now: 0,
            stats: ProcStats::default(),
            trace: Vec::new(),
            comm,
            encode_cap: 0,
            scratch: Vec::new(),
            dp: DataPlaneStats::default(),
            faults_active,
            crash_limit,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            parker: None,
        }
    }

    /// Attach the event-task switch frame (event scheduler only; set
    /// before the SPMD body runs).
    pub(crate) fn set_parker(&mut self, frame: &'m TaskFrame) {
        self.parker = Some(frame);
    }

    /// Whether event tracing is enabled for this run.
    pub fn tracing(&self) -> bool {
        self.shared.trace
    }

    /// Open a traced span: snapshot the clock and traffic counters.
    /// Pair with [`span_end`](Proc::span_end); cheap enough to call
    /// unconditionally (a few register copies), and `span_end` is a
    /// no-op unless the machine was configured with tracing.
    pub fn span_begin(&self) -> SpanStart {
        SpanStart {
            start: self.now,
            sends: self.stats.sends,
            recvs: self.stats.recvs,
            bytes_sent: self.stats.bytes_sent,
            bytes_recvd: self.stats.bytes_recvd,
        }
    }

    /// Close a traced span opened with [`span_begin`](Proc::span_begin),
    /// recording a [`TraceEvent`] whose counters are the traffic this
    /// processor performed since the snapshot. No-op unless the machine
    /// was configured with tracing.
    pub fn span_end(&mut self, label: &str, span: SpanStart) {
        if self.shared.trace {
            self.trace.push(TraceEvent {
                kind: TraceKind::Span,
                label: label.to_string(),
                start: span.start,
                end: self.now,
                sends: self.stats.sends - span.sends,
                recvs: self.stats.recvs - span.recvs,
                bytes_sent: self.stats.bytes_sent - span.bytes_sent,
                bytes_recvd: self.stats.bytes_recvd - span.bytes_recvd,
            });
        }
    }

    /// Drain the recorded trace (machine internals).
    pub(crate) fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Drain the per-peer traffic row (machine internals).
    pub(crate) fn take_comm(&mut self) -> Option<CommRow> {
        self.comm.take()
    }

    /// This processor's id, in `0..nprocs()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.shared.mesh.procs()
    }

    /// The logical process grid (equal to the physical mesh on
    /// mesh-shaped machines).
    pub fn mesh(&self) -> Mesh {
        self.shared.mesh
    }

    /// The physical interconnect.
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// Weighted hop distance from this processor to `dst` on the
    /// physical interconnect.
    pub fn hops_to(&self, dst: usize) -> usize {
        self.shared.topo.hops(self.id, dst)
    }

    /// The machine-wide collective-algorithm selection (config /
    /// `SKIL_COLLECTIVE_ALGO`); `None` leaves each collective its own
    /// default.
    pub fn collective_algo(&self) -> Option<CollectiveAlgo> {
        self.shared.collective_algo
    }

    /// The ring virtual topology over this machine, priced by the
    /// physical topology's hop metric.
    pub fn ring(&self, virtual_links: bool) -> Ring {
        Ring::on(self.shared.topo, virtual_links)
    }

    /// The 2-D torus virtual topology over this machine, priced by the
    /// physical topology's hop metric.
    pub fn torus(&self, virtual_links: bool) -> Torus2d {
        Torus2d::on(self.shared.topo, virtual_links)
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.shared.cost
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current virtual time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.shared.cost.seconds(self.now)
    }

    /// Activity counters so far.
    pub fn stats(&self) -> ProcStats {
        self.stats
    }

    /// Host data-plane counters so far.
    pub(crate) fn data_plane(&self) -> DataPlaneStats {
        self.dp
    }

    /// Advance the virtual clock by `cycles` of computation.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.now += cycles;
        self.stats.compute += cycles;
        if self.now >= self.crash_limit {
            self.crash();
        }
    }

    /// Record a zero-width fault-event instant at virtual time `at`
    /// (no-op unless tracing). Fault instants ride the same trace stream
    /// as skeleton spans, so they show up in `skeleton_metrics` and as
    /// instant events in the Chrome export.
    fn trace_instant(&mut self, kind: TraceKind, label: &str, at: u64) {
        if self.shared.trace {
            self.trace.push(TraceEvent {
                kind,
                label: label.to_string(),
                start: at,
                end: at,
                sends: 0,
                recvs: 0,
                bytes_sent: 0,
                bytes_recvd: 0,
            });
        }
    }

    /// The fault plan scheduled this processor to die and its clock just
    /// reached the fatal cycle: unwind with a structured [`SimAbort`].
    /// The machine's job wrapper catches it, marks this processor down
    /// (waking blocked peers into `PeerDown`), and reports the whole run
    /// as a [`SimFailure`](crate::error::SimFailure) — never a hang.
    #[cold]
    fn crash(&mut self) -> ! {
        let cycle = self.crash_limit;
        self.trace_instant(TraceKind::Crash, "fault.crash", self.now);
        std::panic::panic_any(SimAbort { proc: self.id, cause: AbortCause::Crashed { cycle } })
    }

    /// Structured abort for delivery-layer give-up.
    #[cold]
    fn abort_retry_exhausted(&mut self, dst: usize, tag: u64, attempts: u32) -> ! {
        std::panic::panic_any(SimAbort {
            proc: self.id,
            cause: AbortCause::RetryExhausted { dst, tag, attempts },
        })
    }

    fn check_peer(&self, peer: usize) {
        assert!(
            peer < self.nprocs(),
            "processor {} addressed invalid peer {} (machine has {})",
            self.id,
            peer,
            self.nprocs()
        );
        assert_ne!(peer, self.id, "processor {} attempted a self-send", self.id);
    }

    /// Flatten `val` once and freeze it into a payload: short results
    /// are copied inline into the envelope (no allocation, and the
    /// encode buffer is reused immediately), long ones move into a
    /// shared heap buffer — no copy between encoding and sharing.
    pub(crate) fn encode<T: Wire>(&mut self, val: &T) -> Payload {
        let mut buf = self.scratch.pop().unwrap_or_else(|| Vec::with_capacity(self.encode_cap));
        val.flatten(&mut buf);
        self.encode_cap = buf.len();
        if buf.len() <= INLINE_PAYLOAD {
            let payload = Payload::copy_from(&buf);
            buf.clear();
            self.scratch.push(buf);
            payload
        } else {
            Payload::Heap(Arc::new(buf))
        }
    }

    /// Return a drained payload's heap buffer to the encode pool, if it
    /// had one and this receiver was its last holder. Closes the loop
    /// with [`encode`](Proc::encode): in steady-state ping-pong traffic
    /// the same buffers shuttle between the peers' pools instead of
    /// being allocated and freed per message.
    fn recycle(&mut self, bytes: Payload) {
        if self.scratch.len() < SCRATCH_BUFS {
            if let Some(mut buf) = bytes.reclaim_vec() {
                buf.clear();
                self.scratch.push(buf);
            }
        }
    }

    /// Deposit `env` into `dst`'s mailbox and wake the receiver.
    ///
    /// Under the event scheduler this is the scheduler-native path: the
    /// envelope goes straight into the receiver's queue and a parked
    /// receiver task is handed to the ready heap at the later of the
    /// envelope's arrival and its own clock — no condvar is touched,
    /// because every receiver in an event-mode run is a coroutine task
    /// (never a thread parked in `Mailbox::get`). The thread scheduler
    /// keeps the condvar broadcast. Either way the arrival timestamp was
    /// fixed analytically above, so the choice of path is invisible to
    /// virtual time.
    fn put_and_wake(&mut self, dst: usize, env: Envelope) {
        if env.bytes.is_inline() {
            self.dp.inline_msgs += 1;
        } else {
            self.dp.heap_msgs += 1;
        }
        let arrival = env.arrival;
        match &self.shared.sched {
            Some(sched) => {
                self.dp.direct_deliveries += 1;
                if self.shared.mailboxes[dst].put_direct(env) {
                    sched.push_ready(dst, arrival.max(sched.vnow_hint(dst)));
                }
            }
            None => {
                self.dp.condvar_deliveries += 1;
                self.shared.mailboxes[dst].put(env);
            }
        }
    }

    /// Deposit one logical message for `dst`, `transit` virtual cycles of
    /// link time away, and return the virtual time at which it is
    /// delivered. Counts the message once in the logical traffic stats
    /// regardless of how many physical transmission attempts the fault
    /// plan forces, so `sends`/`bytes_sent` (and machine-wide byte
    /// conservation) are identical with and without faults.
    fn deposit(&mut self, dst: usize, tag: u64, bytes: Payload, transit: u64) -> u64 {
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        if let Some(comm) = &mut self.comm {
            comm.sent_msgs[dst] += 1;
            comm.sent_bytes[dst] += bytes.len() as u64;
        }
        if self.faults_active {
            return self.deliver_reliably(dst, tag, bytes, transit);
        }
        let arrival = self.now + transit;
        self.put_and_wake(dst, Envelope { src: self.id, tag, seq: 0, arrival, bytes });
        arrival
    }

    /// The reliable-delivery layer: simulate the stop-and-wait ack
    /// protocol for one message analytically on the sender.
    ///
    /// Because the fault plan is a pure function of
    /// `(seed, src, dst, tag, seq, attempt)`, the sender can fold the
    /// whole exchange — original transmission, lost attempts, backoff
    /// timers, the retransmission that finally lands — into the single
    /// arrival timestamp of the envelope it deposits. No ack messages
    /// flow on the host, so the protocol adds zero host traffic and
    /// stays deterministic under any thread schedule (the determinism
    /// argument in DESIGN.md §12). The protocol machinery itself charges
    /// the sender nothing: faults perturb *when* messages arrive (wait
    /// time), never how much anyone computes or how many logical
    /// messages flow.
    fn deliver_reliably(&mut self, dst: usize, tag: u64, bytes: Payload, transit: u64) -> u64 {
        let plan = &self.shared.faults;
        let seq = {
            let s = self.send_seq.entry((dst, tag)).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        // Virtual time the current attempt leaves the sender. Retries
        // push it forward by the backoff schedule; the sender's own
        // clock does not advance (async sends overlap with compute).
        let mut fire = self.now;
        let mut attempt: u32 = 0;
        loop {
            match plan.fate(self.id, dst, tag, seq, attempt) {
                Fate::Drop => {
                    self.stats.drops += 1;
                    self.trace_instant(TraceKind::Drop, "fault.drop", fire);
                    attempt += 1;
                    if attempt > plan.budget() {
                        self.abort_retry_exhausted(dst, tag, attempt);
                    }
                    fire += plan.backoff(attempt);
                    self.stats.retries += 1;
                    self.trace_instant(TraceKind::Retry, "fault.retry", fire);
                }
                Fate::Deliver { extra_delay, duplicate } => {
                    if extra_delay > 0 {
                        self.stats.delays += 1;
                    }
                    let arrival = fire + transit + extra_delay;
                    self.put_and_wake(
                        dst,
                        Envelope { src: self.id, tag, seq, arrival, bytes: bytes.clone() },
                    );
                    if duplicate {
                        // The duplicate trails the original on the same
                        // flow, so per-flow FIFO (and therefore sequence
                        // monotonicity at the receiver) is preserved.
                        self.trace_instant(TraceKind::Dup, "fault.dup", arrival);
                        self.put_and_wake(
                            dst,
                            Envelope {
                                src: self.id,
                                tag,
                                seq,
                                arrival: arrival + transit.max(1),
                                bytes,
                            },
                        );
                    }
                    return arrival;
                }
            }
        }
    }

    /// Asynchronous send of an already-flattened payload over the mesh
    /// route to `dst`. Charges exactly what [`send`](Proc::send) charges
    /// for the same bytes; collectives use it to flatten once and share
    /// the payload across every downstream link.
    pub(crate) fn send_shared(&mut self, dst: usize, tag: u64, bytes: Payload) {
        self.check_peer(dst);
        let hops = self.shared.topo.hops(self.id, dst);
        self.charge(self.shared.cost.send_cpu);
        let transit = self.shared.cost.transit(bytes.len(), hops);
        self.deposit(dst, tag, bytes, transit);
    }

    /// Asynchronous send over the physical mesh route to `dst`.
    ///
    /// The sender is charged only the CPU cost of initiating the transfer
    /// (`send_cpu`); the link time overlaps with subsequent computation.
    /// The message becomes available to the receiver at
    /// `now + send_cpu + transit(bytes, mesh hops)`.
    pub fn send<T: Wire>(&mut self, dst: usize, tag: u64, val: &T) {
        let hops = self.shared.topo.hops(self.id, dst);
        self.send_hops(dst, hops, tag, val);
    }

    /// Asynchronous send with an explicit hop count, used by virtual
    /// topologies whose embedded links differ from raw mesh distance.
    pub fn send_hops<T: Wire>(&mut self, dst: usize, hops: usize, tag: u64, val: &T) {
        self.check_peer(dst);
        let bytes = self.encode(val);
        self.charge(self.shared.cost.send_cpu);
        let transit = self.shared.cost.transit(bytes.len(), hops);
        self.deposit(dst, tag, bytes, transit);
    }

    /// Synchronous send: the sender blocks until the transfer completes
    /// (the model of the paper's *older* C comparator, which did not use
    /// asynchronous communication). The sender's clock advances by the
    /// full transit time.
    pub fn send_sync<T: Wire>(&mut self, dst: usize, tag: u64, val: &T) {
        let hops = self.shared.topo.hops(self.id, dst);
        self.send_sync_hops(dst, hops, tag, val);
    }

    /// Synchronous send with an explicit hop count.
    pub fn send_sync_hops<T: Wire>(&mut self, dst: usize, hops: usize, tag: u64, val: &T) {
        self.check_peer(dst);
        let bytes = self.encode(val);
        self.charge(self.shared.cost.send_cpu);
        let transit = self.shared.cost.transit(bytes.len(), hops);
        // Blocked until the transfer actually completes: no overlap with
        // computation. Under faults that is the delivery time of the
        // attempt that finally lands, retries and injected delay
        // included — fault-free it is exactly `now + transit`.
        let arrival = self.deposit(dst, tag, bytes, transit);
        self.stats.wait += arrival - self.now;
        self.now = arrival;
        if self.now >= self.crash_limit {
            self.crash();
        }
    }

    /// Raw neighbour-link send, bypassing the routing software: the
    /// model of hand-written transputer code that drives the hardware
    /// links directly (chain/pipeline communication). The sender is
    /// charged only the tiny link overhead; the message arrives after
    /// `raw_link_overhead + bytes * per_byte` per hop.
    pub fn send_raw<T: Wire>(&mut self, dst: usize, hops: usize, tag: u64, val: &T) {
        self.check_peer(dst);
        let bytes = self.encode(val);
        let c = &self.shared.cost;
        self.charge(c.raw_link_overhead);
        let per_hop = c.raw_link_overhead + c.per_byte * bytes.len() as u64;
        let transit = per_hop * hops.max(1) as u64;
        self.deposit(dst, tag, bytes, transit);
    }

    /// Dequeue the next envelope from `(src, tag)`, advancing the virtual
    /// clock to its arrival and charging `recv_cost` for accepting it.
    /// The payload stays shared — collectives forward it to further links
    /// without re-flattening.
    pub(crate) fn recv_envelope(&mut self, src: usize, tag: u64, recv_cost: u64) -> Envelope {
        self.check_peer(src);
        // Borrow the wait flags straight off the `'m`-lived shared state
        // so `ctl` stays usable while the loop mutates `self`.
        let shared: &'m Shared = self.shared;
        // Down-propagation is unconditional (not gated on the fault
        // plan): a Skil runtime error can down a processor in any run,
        // and its blocked peers must cascade as `PeerDown` rather than
        // sit out the deadlock timeout.
        let ctl = WaitCtl {
            poison: &shared.poison,
            src_down: Some(&shared.downs[src]),
            deadline: shared.deadlock_timeout,
            gate: shared.gate.as_deref(),
        };
        let env = loop {
            let outcome = match self.parker {
                None => shared.mailboxes[self.id].get(src, tag, ctl),
                Some(frame) => self.event_wait(frame, src, tag),
            };
            match outcome {
                RecvOutcome::Message(e) => {
                    if self.faults_active {
                        let expected = self.recv_seq.entry((src, tag)).or_insert(0);
                        if e.seq < *expected {
                            // A duplicate copy the ack protocol already
                            // delivered: suppress it charge-free (it
                            // affects neither the clock nor the logical
                            // traffic counters) and keep waiting.
                            self.stats.dups += 1;
                            let at = self.now;
                            self.trace_instant(TraceKind::Dup, "fault.dup_suppressed", at);
                            continue;
                        }
                        *expected = e.seq + 1;
                    }
                    break e;
                }
                RecvOutcome::Poisoned => {
                    panic!("processor {}: aborted (a peer processor panicked)", self.id)
                }
                RecvOutcome::PeerDown => {
                    // Structured cascade through the machine's failure
                    // path: the job wrapper marks this processor down
                    // too, so failure propagates along wait chains
                    // instead of hanging anyone.
                    std::panic::panic_any(SimAbort {
                        proc: self.id,
                        cause: AbortCause::PeerDown { peer: src },
                    })
                }
                RecvOutcome::TimedOut => {
                    // Snapshot everything queued at the blocked processor
                    // so a misrouted tag is diagnosable from the message
                    // alone.
                    let pending = self.shared.mailboxes[self.id].pending();
                    panic!(
                        "processor {}: deadlock suspected waiting for (src={}, tag={}); \
                         {} pending (src, tag) envelope(s): {:?}",
                        self.id,
                        src,
                        tag,
                        pending.len(),
                        pending
                    )
                }
            }
        };
        self.stats.recvs += 1;
        self.stats.bytes_recvd += env.bytes.len() as u64;
        if let Some(comm) = &mut self.comm {
            comm.recvd_msgs[env.src] += 1;
            comm.recvd_bytes[env.src] += env.bytes.len() as u64;
        }
        if env.arrival > self.now {
            self.stats.wait += env.arrival - self.now;
            self.now = env.arrival;
            if self.now >= self.crash_limit {
                self.crash();
            }
        }
        self.charge(recv_cost);
        env
    }

    /// The event-scheduler receive wait: poll the queue and abort flags,
    /// then yield back to the scheduler worker (which registers the park
    /// in the mailbox *after* the context is saved — see
    /// `sched::block_task`). Checks mirror [`Mailbox::get`] in the same
    /// order: queued mail first, then the peer-down flag, then poison. A
    /// [`WakeKind::Deadlock`] resume maps to `TimedOut`, so the
    /// diagnostic path is shared with the thread scheduler's wall-clock
    /// timeout.
    fn event_wait(&self, frame: &TaskFrame, src: usize, tag: u64) -> RecvOutcome {
        let shared = self.shared;
        let mb = &shared.mailboxes[self.id];
        loop {
            if let Some(env) = mb.try_take(src, tag) {
                return RecvOutcome::Message(env);
            }
            if shared.downs[src].load(Ordering::Acquire) {
                return RecvOutcome::PeerDown;
            }
            if shared.poison.load(Ordering::Acquire) {
                return RecvOutcome::Poisoned;
            }
            match frame.yield_blocked(src, tag, self.now) {
                WakeKind::Normal => continue,
                WakeKind::Deadlock => return RecvOutcome::TimedOut,
            }
        }
    }

    pub(crate) fn decode_or_panic<T: Wire>(&self, env: &Envelope) -> T {
        match T::from_bytes(&env.bytes) {
            Ok(v) => v,
            Err(e) => panic!(
                "processor {}: message from {} with tag {} failed to decode: {}",
                self.id, env.src, env.tag, e
            ),
        }
    }

    /// Raw receive matching [`send_raw`](Proc::send_raw): charges only
    /// the link overhead instead of the full software receive cost.
    pub fn recv_raw<T: Wire>(&mut self, src: usize, tag: u64) -> T {
        let env = self.recv_envelope(src, tag, self.shared.cost.raw_link_overhead);
        let v = self.decode_or_panic(&env);
        self.recycle(env.bytes);
        v
    }

    /// Receive the next message from `src` carrying `tag`, advancing the
    /// virtual clock to the message's arrival time if it is in the local
    /// future.
    ///
    /// Panics on decode failure (an SPMD type mismatch is a program bug)
    /// and after `deadlock_timeout` of real time with a diagnostic, so
    /// deadlocked simulations fail loudly instead of hanging the suite.
    pub fn recv<T: Wire>(&mut self, src: usize, tag: u64) -> T {
        // Receiver-side software cost of accepting the message.
        let env = self.recv_envelope(src, tag, self.shared.cost.recv_cpu);
        let v = self.decode_or_panic(&env);
        self.recycle(env.bytes);
        v
    }

    /// Raise the local clock to `t` if it is in the future (used by
    /// collectives to model synchronization points).
    pub fn sync_to(&mut self, t: u64) {
        if t > self.now {
            self.stats.wait += t - self.now;
            self.now = t;
            if self.now >= self.crash_limit {
                self.crash();
            }
        }
    }

    /// True once any processor in the machine has panicked.
    pub fn poisoned(&self) -> bool {
        self.shared.poison.load(Ordering::Acquire)
    }
}
