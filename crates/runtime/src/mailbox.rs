//! Per-processor mailboxes with (source, tag) matching.
//!
//! Every processor owns one mailbox; any processor may deposit an
//! envelope. Reception matches on exact `(src, tag)` pairs and preserves
//! FIFO order per pair, which (together with programs that never receive
//! from "any source") makes simulations deterministic regardless of host
//! thread scheduling.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One in-flight message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending processor.
    pub src: usize,
    /// User-chosen message tag.
    pub tag: u64,
    /// Virtual time at which the message is fully available to the
    /// receiver.
    pub arrival: u64,
    /// Flattened payload.
    pub bytes: Vec<u8>,
}

/// A processor's incoming message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cond: Condvar,
}

/// Outcome of a bounded wait on a mailbox.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A matching envelope was dequeued.
    Message(Envelope),
    /// The machine was poisoned (a peer panicked).
    Poisoned,
    /// The deadline passed with no matching message.
    TimedOut,
}

impl Mailbox {
    /// Deposit an envelope and wake any waiting receiver.
    pub fn put(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        self.cond.notify_all();
    }

    /// Dequeue the oldest envelope matching `(src, tag)`, waiting up to
    /// `deadline` total. `poison` aborts the wait early when set.
    pub fn get(
        &self,
        src: usize,
        tag: u64,
        poison: &AtomicBool,
        deadline: Duration,
    ) -> RecvOutcome {
        let start = std::time::Instant::now();
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.src == src && e.tag == tag) {
                // VecDeque::remove preserves the relative order of the
                // remaining envelopes, keeping per-(src, tag) FIFO intact.
                return RecvOutcome::Message(q.remove(pos).expect("position is valid"));
            }
            if poison.load(Ordering::Acquire) {
                return RecvOutcome::Poisoned;
            }
            if start.elapsed() >= deadline {
                return RecvOutcome::TimedOut;
            }
            // Wake periodically to observe poisoning even if no message
            // ever arrives.
            self.cond.wait_for(&mut q, Duration::from_millis(25));
        }
    }

    /// Number of queued envelopes (diagnostics only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the mailbox is empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `(src, tag)` pairs currently queued (for deadlock
    /// reports).
    pub fn pending(&self) -> Vec<(usize, u64)> {
        self.queue.lock().iter().map(|e| (e.src, e.tag)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: usize, tag: u64, arrival: u64) -> Envelope {
        Envelope { src, tag, arrival, bytes: vec![] }
    }

    #[test]
    fn matches_src_and_tag() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        mb.put(env(2, 10, 6));
        mb.put(env(1, 11, 7));
        match mb.get(2, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => assert_eq!((e.src, e.tag, e.arrival), (2, 10, 6)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.pending(), vec![(1, 10), (1, 11)]);
    }

    #[test]
    fn fifo_per_pair() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 100));
        mb.put(env(1, 10, 200));
        let a = match mb.get(1, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        let b = match mb.get(1, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        assert_eq!((a, b), (100, 200));
    }

    #[test]
    fn times_out_without_match() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        match mb.get(1, 99, &poison, Duration::from_millis(60)) {
            RecvOutcome::TimedOut => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        // The non-matching envelope is untouched.
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn poison_aborts_wait() {
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let poison2 = Arc::clone(&poison);
        let t = std::thread::spawn(move || mb2.get(0, 0, &poison2, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        poison.store(true, Ordering::Release);
        match t.join().unwrap() {
            RecvOutcome::Poisoned => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::default());
        let poison = AtomicBool::new(false);
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            mb2.put(Envelope { src: 3, tag: 7, arrival: 42, bytes: vec![1, 2] });
        });
        match mb.get(3, 7, &poison, Duration::from_secs(5)) {
            RecvOutcome::Message(e) => {
                assert_eq!(e.arrival, 42);
                assert_eq!(e.bytes, vec![1, 2]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        t.join().unwrap();
    }
}
