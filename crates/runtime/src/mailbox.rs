//! Per-processor mailboxes with (source, tag) matching.
//!
//! Every processor owns one mailbox; any processor may deposit an
//! envelope. Reception matches on exact `(src, tag)` pairs and preserves
//! FIFO order per pair, which (together with programs that never receive
//! from "any source") makes simulations deterministic regardless of host
//! thread scheduling.
//!
//! Matching is indexed: envelopes are bucketed by `(src, tag)` in a hash
//! map of FIFO queues, so a receive is a hash lookup plus a pop instead
//! of a linear scan of everything queued. Waits are fully event-driven —
//! a receiver blocks on the mailbox condvar until a matching deposit or a
//! poison wakeup ([`Mailbox::wake_all`]), with the deadline as the only
//! timeout; there is no periodic poll.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock a mutex, ignoring poisoning: mailbox state is a plain queue and
/// stays consistent even if a holder panicked mid-operation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One in-flight message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending processor.
    pub src: usize,
    /// User-chosen message tag.
    pub tag: u64,
    /// Virtual time at which the message is fully available to the
    /// receiver.
    pub arrival: u64,
    /// Flattened payload. Shared, not owned: a sender freezes its encode
    /// buffer into the `Arc` by move, and collectives deliver one
    /// flattened buffer to many receivers by cloning the pointer.
    pub bytes: Arc<Vec<u8>>,
}

/// Envelope queues bucketed by `(src, tag)`.
#[derive(Debug, Default)]
struct Buckets {
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
    /// Total queued envelopes across all buckets.
    len: usize,
}

/// A processor's incoming message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    buckets: Mutex<Buckets>,
    cond: Condvar,
}

/// Outcome of a bounded wait on a mailbox.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A matching envelope was dequeued.
    Message(Envelope),
    /// The machine was poisoned (a peer panicked).
    Poisoned,
    /// The deadline passed with no matching message.
    TimedOut,
}

impl Mailbox {
    /// Deposit an envelope and wake any waiting receiver.
    pub fn put(&self, env: Envelope) {
        let mut b = lock(&self.buckets);
        b.queues.entry((env.src, env.tag)).or_default().push_back(env);
        b.len += 1;
        self.cond.notify_all();
    }

    /// Dequeue the oldest envelope matching `(src, tag)`, waiting up to
    /// `deadline` total. `poison` aborts the wait early when set; the
    /// poisoner must call [`wake_all`](Mailbox::wake_all) so blocked
    /// receivers observe it immediately.
    pub fn get(
        &self,
        src: usize,
        tag: u64,
        poison: &AtomicBool,
        deadline: Duration,
    ) -> RecvOutcome {
        let start = std::time::Instant::now();
        let mut b = lock(&self.buckets);
        loop {
            if let Entry::Occupied(mut q) = b.queues.entry((src, tag)) {
                if let Some(env) = q.get_mut().pop_front() {
                    if q.get().is_empty() {
                        q.remove();
                    }
                    b.len -= 1;
                    return RecvOutcome::Message(env);
                }
                q.remove();
            }
            if poison.load(Ordering::Acquire) {
                return RecvOutcome::Poisoned;
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return RecvOutcome::TimedOut;
            }
            let (guard, _timeout) =
                self.cond.wait_timeout(b, deadline - elapsed).unwrap_or_else(|e| e.into_inner());
            b = guard;
        }
    }

    /// Wake every blocked receiver so it can re-check the poison flag.
    /// Taking the lock before notifying closes the race with a receiver
    /// that has checked the flag but not yet parked on the condvar.
    pub fn wake_all(&self) {
        drop(lock(&self.buckets));
        self.cond.notify_all();
    }

    /// Number of queued envelopes (diagnostics only).
    pub fn len(&self) -> usize {
        lock(&self.buckets).len
    }

    /// Whether the mailbox is empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `(src, tag)` pairs currently queued, one entry per
    /// envelope, sorted for stable output (for deadlock reports).
    pub fn pending(&self) -> Vec<(usize, u64)> {
        let b = lock(&self.buckets);
        let mut v: Vec<(usize, u64)> =
            b.queues.iter().flat_map(|(&k, q)| std::iter::repeat_n(k, q.len())).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u64, arrival: u64) -> Envelope {
        Envelope { src, tag, arrival, bytes: Arc::new(Vec::new()) }
    }

    #[test]
    fn matches_src_and_tag() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        mb.put(env(2, 10, 6));
        mb.put(env(1, 11, 7));
        match mb.get(2, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => assert_eq!((e.src, e.tag, e.arrival), (2, 10, 6)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.pending(), vec![(1, 10), (1, 11)]);
    }

    #[test]
    fn fifo_per_pair() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 100));
        mb.put(env(1, 10, 200));
        let a = match mb.get(1, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        let b = match mb.get(1, 10, &poison, Duration::from_secs(1)) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        assert_eq!((a, b), (100, 200));
    }

    #[test]
    fn times_out_without_match() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        match mb.get(1, 99, &poison, Duration::from_millis(60)) {
            RecvOutcome::TimedOut => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        // The non-matching envelope is untouched.
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn poison_aborts_wait() {
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let poison2 = Arc::clone(&poison);
        let t = std::thread::spawn(move || mb2.get(0, 0, &poison2, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        poison.store(true, Ordering::Release);
        mb.wake_all();
        match t.join().unwrap() {
            RecvOutcome::Poisoned => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn poison_wakeup_is_prompt() {
        // Event-driven wakeup: a blocked receiver must observe poisoning
        // well before any polling interval would have fired.
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let poison2 = Arc::clone(&poison);
        let t = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let out = mb2.get(0, 0, &poison2, Duration::from_secs(30));
            (out, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(40));
        poison.store(true, Ordering::Release);
        let poisoned_at = std::time::Instant::now();
        mb.wake_all();
        let (out, _waited) = t.join().unwrap();
        assert!(matches!(out, RecvOutcome::Poisoned));
        assert!(
            poisoned_at.elapsed() < Duration::from_secs(5),
            "wakeup took {:?}",
            poisoned_at.elapsed()
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::default());
        let poison = AtomicBool::new(false);
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            mb2.put(Envelope { src: 3, tag: 7, arrival: 42, bytes: Arc::new(vec![1, 2]) });
        });
        match mb.get(3, 7, &poison, Duration::from_secs(5)) {
            RecvOutcome::Message(e) => {
                assert_eq!(e.arrival, 42);
                assert_eq!(&e.bytes[..], &[1, 2]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn many_distinct_pairs_stay_cheap_and_correct() {
        // Indexed matching: interleave 64 (src, tag) pairs and drain them
        // in an unrelated order.
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        for src in 1..9 {
            for tag in 0..8u64 {
                mb.put(env(src, tag, (src as u64) * 100 + tag));
            }
        }
        assert_eq!(mb.len(), 64);
        for tag in (0..8u64).rev() {
            for src in (1..9).rev() {
                match mb.get(src, tag, &poison, Duration::from_secs(1)) {
                    RecvOutcome::Message(e) => {
                        assert_eq!(e.arrival, (src as u64) * 100 + tag)
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert!(mb.is_empty());
        assert!(mb.pending().is_empty());
    }
}
