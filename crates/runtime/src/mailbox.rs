//! Per-processor mailboxes with (source, tag) matching.
//!
//! Every processor owns one mailbox; any processor may deposit an
//! envelope. Reception matches on exact `(src, tag)` pairs and preserves
//! FIFO order per pair, which (together with programs that never receive
//! from "any source") makes simulations deterministic regardless of host
//! thread scheduling.
//!
//! Matching is indexed: envelopes are bucketed by `(src, tag)` in a hash
//! map of FIFO queues, so a receive is a hash lookup plus a pop instead
//! of a linear scan of everything queued. Waits are fully event-driven —
//! a receiver blocks on the mailbox condvar until a matching deposit or a
//! poison wakeup ([`Mailbox::wake_all`]), with the deadline as the only
//! timeout; there is no periodic poll.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock a mutex, ignoring poisoning: mailbox state is a plain queue and
/// stays consistent even if a holder panicked mid-operation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Payloads at most this long are stored inline in the [`Envelope`]
/// with no heap allocation — covering virtually every scalar/tuple
/// message the collectives send. The representation is a pure function
/// of payload *length*, so it is identical across schedulers and runs.
pub const INLINE_PAYLOAD: usize = 64;

/// A flattened message payload with a small-buffer representation.
///
/// Short payloads (`len <= INLINE_PAYLOAD`) live inline in the envelope
/// and are cloned by `memcpy`; longer ones are shared behind an `Arc`
/// (a sender freezes its encode buffer by move, and collectives deliver
/// one flattened buffer to many receivers by cloning the pointer).
/// Which representation a payload gets depends only on its length,
/// never on the scheduler or the delivery path, so byte streams — and
/// therefore virtual time — cannot observe the difference.
#[derive(Clone)]
pub enum Payload {
    /// Payload stored inline: no allocation, cloned by copy.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// Inline storage; bytes past `len` are unspecified.
        buf: [u8; INLINE_PAYLOAD],
    },
    /// Heap payload shared behind an `Arc`.
    Heap(Arc<Vec<u8>>),
}

impl Payload {
    /// Build a payload from a byte slice, inlining it when short.
    pub fn copy_from(bytes: &[u8]) -> Payload {
        if bytes.len() <= INLINE_PAYLOAD {
            let mut buf = [0u8; INLINE_PAYLOAD];
            buf[..bytes.len()].copy_from_slice(bytes);
            Payload::Inline { len: bytes.len() as u8, buf }
        } else {
            Payload::Heap(Arc::new(bytes.to_vec()))
        }
    }

    /// Build a payload from an owned buffer without copying large ones.
    pub fn from_vec(bytes: Vec<u8>) -> Payload {
        if bytes.len() <= INLINE_PAYLOAD {
            Payload::copy_from(&bytes)
        } else {
            Payload::Heap(Arc::new(bytes))
        }
    }

    /// Whether this payload is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self, Payload::Inline { .. })
    }

    /// Reclaim the backing `Vec` of an exclusively-owned heap payload,
    /// so receivers can recycle drained encode buffers back into a
    /// sender-side pool. Inline and shared payloads have nothing to
    /// reclaim.
    pub fn reclaim_vec(self) -> Option<Vec<u8>> {
        match self {
            Payload::Heap(arc) => Arc::try_unwrap(arc).ok(),
            Payload::Inline { .. } => None,
        }
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Payload::Inline { len, buf } => &buf[..*len as usize],
            Payload::Heap(arc) => arc,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Inline { len, .. } => write!(f, "Payload::Inline({len} bytes)"),
            Payload::Heap(arc) => write!(f, "Payload::Heap({} bytes)", arc.len()),
        }
    }
}

/// One in-flight message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending processor.
    pub src: usize,
    /// User-chosen message tag.
    pub tag: u64,
    /// Per-flow sequence number assigned by the reliable-delivery layer
    /// (always 0 when no fault plan is active). Deposit order per
    /// `(src, tag)` flow is program order, so sequence numbers are
    /// nondecreasing in the queue and the receiver suppresses duplicates
    /// with a single expected-next counter.
    pub seq: u64,
    /// Virtual time at which the message is fully available to the
    /// receiver.
    pub arrival: u64,
    /// Flattened payload (inline when short, `Arc`-shared when large).
    pub bytes: Payload,
}

/// A counted-permit gate bounding how many simulated processors run on
/// host threads at once (`SKIL_WORKER_THREADS`). A processor blocked in
/// [`Mailbox::get`] releases its permit while parked and re-acquires it
/// after waking, so any number of processors make progress under any
/// permit count ≥ 1 — the gate throttles host parallelism only and
/// cannot change virtual time, which the CI scheduler-independence job
/// pins by diffing golden `sim_cycles` between permit counts.
#[derive(Debug)]
pub struct Gate {
    permits: Mutex<usize>,
    cond: Condvar,
}

impl Gate {
    /// A gate with `n ≥ 1` permits.
    pub fn new(n: usize) -> Self {
        Gate { permits: Mutex::new(n.max(1)), cond: Condvar::new() }
    }

    /// Block until a permit is available and take it.
    pub fn acquire(&self) {
        let mut p = lock(&self.permits);
        while *p == 0 {
            p = self.cond.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p -= 1;
    }

    /// Return a permit and wake one waiter.
    pub fn release(&self) {
        *lock(&self.permits) += 1;
        self.cond.notify_one();
    }

    /// Acquire a permit held for the guard's lifetime.
    pub fn permit(&self) -> Permit<'_> {
        self.acquire();
        Permit { gate: self }
    }
}

/// RAII permit from [`Gate::permit`]; released on drop (including
/// unwinds, so a panicking processor cannot starve the gate).
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Everything a bounded mailbox wait consults besides the `(src, tag)`
/// key: abort flags, the deadlock deadline, and the optional host
/// concurrency gate.
#[derive(Debug, Clone, Copy)]
pub struct WaitCtl<'a> {
    /// Global poison flag — a peer panicked with a genuine bug.
    pub poison: &'a AtomicBool,
    /// The sender's down flag — it crashed under the fault plan or gave
    /// up delivering. Checked only after the queue is drained, so
    /// messages deposited before the crash still deliver.
    pub src_down: Option<&'a AtomicBool>,
    /// Real-time budget before the wait reports a suspected deadlock.
    pub deadline: Duration,
    /// Host-concurrency gate; the caller holds a permit, which the wait
    /// lends out while parked.
    pub gate: Option<&'a Gate>,
}

/// Envelope queues bucketed by `(src, tag)`.
#[derive(Debug, Default)]
struct Buckets {
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
    /// Total queued envelopes across all buckets.
    len: usize,
    /// Emptied bucket queues kept for reuse: the hot deposit path takes
    /// a pre-sized queue from here instead of allocating one per
    /// transient `(src, tag)` flow. Bounded so mailboxes that see many
    /// distinct tags (farms index tags by task) cannot hoard memory.
    spare: Vec<VecDeque<Envelope>>,
    /// The owning processor's event-scheduler wait registration: the
    /// `(src, tag)` key it is parked on, if any. Only the event
    /// scheduler sets this; under the thread scheduler waits park on
    /// the condvar instead.
    parked: Option<(usize, u64)>,
}

/// Cap on recycled bucket queues kept per mailbox.
const SPARE_QUEUES: usize = 32;

impl Buckets {
    /// Pop the oldest envelope for `key`, recycling the bucket's
    /// allocation when it empties.
    fn pop(&mut self, key: (usize, u64)) -> Option<Envelope> {
        let q = self.queues.get_mut(&key)?;
        let env = q.pop_front()?;
        if q.is_empty() {
            let q = self.queues.remove(&key).expect("bucket existed");
            if self.spare.len() < SPARE_QUEUES {
                self.spare.push(q);
            }
        }
        self.len -= 1;
        Some(env)
    }

    /// Append an envelope to its `(src, tag)` bucket, reusing a spare
    /// queue when the bucket is new.
    fn push(&mut self, env: Envelope) {
        let key = (env.src, env.tag);
        match self.queues.entry(key) {
            Entry::Occupied(mut q) => q.get_mut().push_back(env),
            Entry::Vacant(slot) => {
                let mut q = self.spare.pop().unwrap_or_else(|| VecDeque::with_capacity(4));
                q.push_back(env);
                slot.insert(q);
            }
        }
        self.len += 1;
    }
}

/// A processor's incoming message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    buckets: Mutex<Buckets>,
    cond: Condvar,
}

/// Outcome of a bounded wait on a mailbox.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A matching envelope was dequeued.
    Message(Envelope),
    /// The machine was poisoned (a peer panicked).
    Poisoned,
    /// The awaited sender went down (fault-model crash or delivery
    /// give-up) and its queue holds no matching envelope.
    PeerDown,
    /// The deadline passed with no matching message.
    TimedOut,
}

impl Mailbox {
    /// Deposit an envelope and wake any waiting receiver. Returns `true`
    /// when an event-scheduler task parked on this envelope's
    /// `(src, tag)` key was unparked by the deposit — the caller must
    /// then make that task ready (see the event core in `sched.rs`).
    pub fn put(&self, env: Envelope) -> bool {
        let woke = self.deposit(env);
        // The condvar broadcast is for thread-scheduler receivers parked
        // in `get`; whether an event task was unparked is orthogonal.
        self.cond.notify_all();
        woke
    }

    /// Scheduler-native deposit: like [`put`](Mailbox::put) but without
    /// the condvar broadcast. Only valid when the receiving processor is
    /// an event-scheduler task — such tasks never wait on the condvar
    /// (they park via [`park`](Mailbox::park) and are woken through the
    /// ready heap), so the broadcast would be pure overhead on the
    /// per-message fast path.
    pub(crate) fn put_direct(&self, env: Envelope) -> bool {
        self.deposit(env)
    }

    /// Queue an envelope and clear a matching parked-task registration.
    fn deposit(&self, env: Envelope) -> bool {
        let mut b = lock(&self.buckets);
        let key = (env.src, env.tag);
        b.push(env);
        let woke = b.parked == Some(key);
        if woke {
            b.parked = None;
        }
        woke
    }

    /// Dequeue the oldest envelope matching `(src, tag)`, waiting up to
    /// `ctl.deadline` total. `ctl.poison` / `ctl.src_down` abort the
    /// wait early when set; whoever sets them must call
    /// [`wake_all`](Mailbox::wake_all) so blocked receivers observe the
    /// abort immediately. Time spent re-acquiring `ctl.gate` after a
    /// wakeup is credited back to the deadline — the gate throttles host
    /// parallelism and must not masquerade as a simulated deadlock.
    pub fn get(&self, src: usize, tag: u64, ctl: WaitCtl<'_>) -> RecvOutcome {
        let start = std::time::Instant::now();
        let mut gate_credit = Duration::ZERO;
        let key = (src, tag);
        let mut b = lock(&self.buckets);
        loop {
            if let Some(env) = b.pop(key) {
                return RecvOutcome::Message(env);
            }
            // Queue first, flags second: envelopes deposited before a
            // crash are still delivered.
            if let Some(down) = ctl.src_down {
                if down.load(Ordering::Acquire) {
                    return RecvOutcome::PeerDown;
                }
            }
            if ctl.poison.load(Ordering::Acquire) {
                return RecvOutcome::Poisoned;
            }
            let elapsed = start.elapsed().saturating_sub(gate_credit);
            if elapsed >= ctl.deadline {
                return RecvOutcome::TimedOut;
            }
            let budget = ctl.deadline - elapsed;
            match ctl.gate {
                None => {
                    let (guard, _timeout) =
                        self.cond.wait_timeout(b, budget).unwrap_or_else(|e| e.into_inner());
                    b = guard;
                }
                Some(gate) => {
                    // Lend the permit out for the park. Deposits need the
                    // bucket lock we hold until `wait_timeout` parks, so
                    // no wakeup can be lost in between.
                    gate.release();
                    let (guard, _timeout) =
                        self.cond.wait_timeout(b, budget).unwrap_or_else(|e| e.into_inner());
                    // Re-acquire with the bucket lock dropped: a permit
                    // holder may itself be blocked on this bucket's lock
                    // inside `put`.
                    drop(guard);
                    let t0 = std::time::Instant::now();
                    gate.acquire();
                    gate_credit += t0.elapsed();
                    b = lock(&self.buckets);
                }
            }
        }
    }

    /// Non-blocking dequeue of the oldest `(src, tag)` envelope — the
    /// event scheduler's receive fast path (a blocked event task parks
    /// via [`park`](Mailbox::park) instead of the condvar).
    pub(crate) fn try_take(&self, src: usize, tag: u64) -> Option<Envelope> {
        lock(&self.buckets).pop((src, tag))
    }

    /// Register the owning event task as parked on `(src, tag)`.
    /// Returns `false` — without registering — if a matching envelope is
    /// already queued, in which case the task must stay runnable. The
    /// registration is cleared by the [`put`](Mailbox::put) that matches
    /// it or by [`unpark`](Mailbox::unpark).
    pub(crate) fn park(&self, src: usize, tag: u64) -> bool {
        let mut b = lock(&self.buckets);
        if b.queues.contains_key(&(src, tag)) {
            return false;
        }
        debug_assert!(b.parked.is_none(), "one task per mailbox");
        b.parked = Some((src, tag));
        true
    }

    /// Clear a parked-task registration whose key satisfies `pred`
    /// (poison wakes everyone; a peer-down wake matches on the source).
    /// Returns `true` if a registration was cleared — exactly one waker
    /// wins, so the caller that sees `true` owns making the task ready.
    pub(crate) fn unpark(&self, pred: impl Fn((usize, u64)) -> bool) -> bool {
        let mut b = lock(&self.buckets);
        match b.parked {
            Some(key) if pred(key) => {
                b.parked = None;
                true
            }
            _ => false,
        }
    }

    /// Reset for reuse by the next run on a warm machine: drop leftover
    /// envelopes (a failed or aborted run may leave some queued) and any
    /// stale wait registration, keeping the bucket map and recycled
    /// queue allocations — the per-run setup floor this shaves is the
    /// point of the machine's run arena.
    pub(crate) fn reset(&self) {
        let mut b = lock(&self.buckets);
        let keys: Vec<(usize, u64)> = b.queues.keys().copied().collect();
        for key in keys {
            let mut q = b.queues.remove(&key).expect("key just listed");
            q.clear();
            if b.spare.len() < SPARE_QUEUES {
                b.spare.push(q);
            }
        }
        b.len = 0;
        b.parked = None;
    }

    /// Wake every blocked receiver so it can re-check the poison flag.
    /// Taking the lock before notifying closes the race with a receiver
    /// that has checked the flag but not yet parked on the condvar.
    pub fn wake_all(&self) {
        drop(lock(&self.buckets));
        self.cond.notify_all();
    }

    /// Number of queued envelopes (diagnostics only).
    pub fn len(&self) -> usize {
        lock(&self.buckets).len
    }

    /// Whether the mailbox is empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `(src, tag)` pairs currently queued, one entry per
    /// envelope, sorted for stable output (for deadlock reports).
    pub fn pending(&self) -> Vec<(usize, u64)> {
        let b = lock(&self.buckets);
        let mut v: Vec<(usize, u64)> =
            b.queues.iter().flat_map(|(&k, q)| std::iter::repeat_n(k, q.len())).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u64, arrival: u64) -> Envelope {
        Envelope { src, tag, seq: 0, arrival, bytes: Payload::from_vec(Vec::new()) }
    }

    fn ctl(poison: &AtomicBool, deadline: Duration) -> WaitCtl<'_> {
        WaitCtl { poison, src_down: None, deadline, gate: None }
    }

    #[test]
    fn matches_src_and_tag() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        mb.put(env(2, 10, 6));
        mb.put(env(1, 11, 7));
        match mb.get(2, 10, ctl(&poison, Duration::from_secs(1))) {
            RecvOutcome::Message(e) => assert_eq!((e.src, e.tag, e.arrival), (2, 10, 6)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.pending(), vec![(1, 10), (1, 11)]);
    }

    #[test]
    fn fifo_per_pair() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 100));
        mb.put(env(1, 10, 200));
        let a = match mb.get(1, 10, ctl(&poison, Duration::from_secs(1))) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        let b = match mb.get(1, 10, ctl(&poison, Duration::from_secs(1))) {
            RecvOutcome::Message(e) => e.arrival,
            _ => panic!(),
        };
        assert_eq!((a, b), (100, 200));
    }

    #[test]
    fn times_out_without_match() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        mb.put(env(1, 10, 5));
        match mb.get(1, 99, ctl(&poison, Duration::from_millis(60))) {
            RecvOutcome::TimedOut => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        // The non-matching envelope is untouched.
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn poison_aborts_wait() {
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let poison2 = Arc::clone(&poison);
        let t = std::thread::spawn(move || mb2.get(0, 0, ctl(&poison2, Duration::from_secs(30))));
        std::thread::sleep(Duration::from_millis(50));
        poison.store(true, Ordering::Release);
        mb.wake_all();
        match t.join().unwrap() {
            RecvOutcome::Poisoned => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn poison_wakeup_is_prompt() {
        // Event-driven wakeup: a blocked receiver must observe poisoning
        // well before any polling interval would have fired.
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let poison2 = Arc::clone(&poison);
        let t = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let out = mb2.get(0, 0, ctl(&poison2, Duration::from_secs(30)));
            (out, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(40));
        poison.store(true, Ordering::Release);
        let poisoned_at = std::time::Instant::now();
        mb.wake_all();
        let (out, _waited) = t.join().unwrap();
        assert!(matches!(out, RecvOutcome::Poisoned));
        assert!(
            poisoned_at.elapsed() < Duration::from_secs(5),
            "wakeup took {:?}",
            poisoned_at.elapsed()
        );
    }

    #[test]
    fn peer_down_aborts_wait_but_queued_mail_still_delivers() {
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        let down = AtomicBool::new(true);
        mb.put(env(4, 9, 11));
        let c = WaitCtl {
            poison: &poison,
            src_down: Some(&down),
            deadline: Duration::from_secs(1),
            gate: None,
        };
        // Sent-before-crash mail is drained first …
        match mb.get(4, 9, c) {
            RecvOutcome::Message(e) => assert_eq!(e.arrival, 11),
            other => panic!("unexpected outcome {other:?}"),
        }
        // … and only then does the down flag surface.
        match mb.get(4, 9, c) {
            RecvOutcome::PeerDown => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn peer_down_wakeup_is_prompt() {
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let down = Arc::new(AtomicBool::new(false));
        let (mb2, poison2, down2) = (Arc::clone(&mb), Arc::clone(&poison), Arc::clone(&down));
        let t = std::thread::spawn(move || {
            let c = WaitCtl {
                poison: &poison2,
                src_down: Some(&down2),
                deadline: Duration::from_secs(30),
                gate: None,
            };
            mb2.get(0, 0, c)
        });
        std::thread::sleep(Duration::from_millis(40));
        down.store(true, Ordering::Release);
        let marked_at = std::time::Instant::now();
        mb.wake_all();
        assert!(matches!(t.join().unwrap(), RecvOutcome::PeerDown));
        assert!(
            marked_at.elapsed() < Duration::from_secs(5),
            "wakeup took {:?}",
            marked_at.elapsed()
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::default());
        let poison = AtomicBool::new(false);
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            mb2.put(Envelope {
                src: 3,
                tag: 7,
                seq: 0,
                arrival: 42,
                bytes: Payload::from_vec(vec![1, 2]),
            });
        });
        match mb.get(3, 7, ctl(&poison, Duration::from_secs(5))) {
            RecvOutcome::Message(e) => {
                assert_eq!(e.arrival, 42);
                assert_eq!(&e.bytes[..], &[1, 2]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn many_distinct_pairs_stay_cheap_and_correct() {
        // Indexed matching: interleave 64 (src, tag) pairs and drain them
        // in an unrelated order.
        let mb = Mailbox::default();
        let poison = AtomicBool::new(false);
        for src in 1..9 {
            for tag in 0..8u64 {
                mb.put(env(src, tag, (src as u64) * 100 + tag));
            }
        }
        assert_eq!(mb.len(), 64);
        for tag in (0..8u64).rev() {
            for src in (1..9).rev() {
                match mb.get(src, tag, ctl(&poison, Duration::from_secs(1))) {
                    RecvOutcome::Message(e) => {
                        assert_eq!(e.arrival, (src as u64) * 100 + tag)
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert!(mb.is_empty());
        assert!(mb.pending().is_empty());
    }

    #[test]
    fn gate_permits_bound_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let gate = Arc::new(Gate::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (gate, running, peak) =
                (Arc::clone(&gate), Arc::clone(&running), Arc::clone(&peak));
            handles.push(std::thread::spawn(move || {
                let _permit = gate.permit();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                running.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn parked_receiver_lends_its_permit_out() {
        // One permit, two parties: the receiver parks first (holding the
        // only permit), the sender must still be able to run and deposit.
        let gate = Arc::new(Gate::new(1));
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(AtomicBool::new(false));
        let (gate2, mb2, poison2) = (Arc::clone(&gate), Arc::clone(&mb), Arc::clone(&poison));
        let receiver = std::thread::spawn(move || {
            let _permit = gate2.permit();
            let c = WaitCtl {
                poison: &poison2,
                src_down: None,
                deadline: Duration::from_secs(30),
                gate: Some(&gate2),
            };
            mb2.get(5, 5, c)
        });
        std::thread::sleep(Duration::from_millis(30));
        let sender = {
            let (gate, mb) = (Arc::clone(&gate), Arc::clone(&mb));
            std::thread::spawn(move || {
                let _permit = gate.permit(); // must not deadlock
                mb.put(Envelope {
                    src: 5,
                    tag: 5,
                    seq: 0,
                    arrival: 1,
                    bytes: Payload::from_vec(vec![]),
                });
            })
        };
        sender.join().unwrap();
        match receiver.join().unwrap() {
            RecvOutcome::Message(e) => assert_eq!(e.arrival, 1),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
