//! Error types for the runtime.

use std::fmt;

/// Errors produced while decoding a wire-format byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes before the value was complete.
    Eof {
        /// How many bytes the decoder wanted.
        wanted: usize,
        /// How many bytes were left.
        available: usize,
    },
    /// The bytes were structurally invalid for the expected type
    /// (e.g. a bad enum discriminant or a non-UTF-8 string).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { wanted, available } => write!(
                f,
                "unexpected end of wire data: wanted {wanted} bytes, {available} available"
            ),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors produced by runtime operations (message passing, topology use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A message destination or source was not a valid processor id.
    BadProc {
        /// The offending processor id.
        id: usize,
        /// Number of processors in the machine.
        nprocs: usize,
    },
    /// A message payload failed to decode as the requested type.
    Decode(WireError),
    /// A processor sent a message to itself, which the link model
    /// does not support (local data needs no message).
    SelfSend(usize),
    /// The machine configuration was inconsistent
    /// (e.g. mesh dimensions whose product is not the processor count).
    BadConfig(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::BadProc { id, nprocs } => {
                write!(f, "processor id {id} out of range (machine has {nprocs})")
            }
            RtError::Decode(e) => write!(f, "message decode failed: {e}"),
            RtError::SelfSend(id) => write!(f, "processor {id} attempted to send to itself"),
            RtError::BadConfig(msg) => write!(f, "bad machine configuration: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<WireError> for RtError {
    fn from(e: WireError) -> Self {
        RtError::Decode(e)
    }
}

/// Why a processor went down mid-run (fault injection or delivery-layer
/// give-up). Ordinary Rust panics in user code are *not* represented
/// here — they still poison the machine and resume on the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortCause {
    /// The fault plan crashed this processor at the given virtual cycle.
    Crashed {
        /// The virtual cycle at which the crash fired.
        cycle: u64,
    },
    /// The reliable-delivery layer exhausted its retry budget sending to
    /// `dst` — the link (or peer) is considered dead.
    RetryExhausted {
        /// Destination processor of the undeliverable message.
        dst: usize,
        /// Message tag of the undeliverable message.
        tag: u64,
        /// Total transmission attempts made (1 original + retries).
        attempts: u32,
    },
    /// A peer this processor was communicating with went down; the
    /// failure cascades through the blocked receive.
    PeerDown {
        /// The processor that went down first.
        peer: usize,
    },
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::Crashed { cycle } => {
                write!(f, "crashed by fault plan at virtual cycle {cycle}")
            }
            AbortCause::RetryExhausted { dst, tag, attempts } => write!(
                f,
                "retry budget exhausted sending to processor {dst} (tag {tag}) after \
                 {attempts} attempts"
            ),
            AbortCause::PeerDown { peer } => {
                write!(f, "PeerDown: processor {peer} went down mid-run")
            }
        }
    }
}

/// The structured panic payload a processor unwinds with when it goes
/// down for a simulated (fault-model) reason. The machine's job wrapper
/// downcasts for this to distinguish simulated failures from genuine
/// bugs in user code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAbort {
    /// The processor that aborted.
    pub proc: usize,
    /// Why it aborted.
    pub cause: AbortCause,
}

impl fmt::Display for SimAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "processor {}: {}", self.proc, self.cause)
    }
}

impl std::error::Error for SimAbort {}

/// A whole-run failure: one or more processors went down for simulated
/// reasons. Returned by [`Machine::try_run`](crate::Machine::try_run)
/// instead of hanging or unwinding, so callers (and the `skilc` CLI) can
/// report it as a structured diagnostic.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Every processor that aborted, in processor-id order. The first
    /// entry with a non-`PeerDown` cause is the root failure.
    pub aborts: Vec<SimAbort>,
}

impl SimFailure {
    /// The root failure: the first abort whose cause is not a cascaded
    /// `PeerDown` (falls back to the first abort if all are cascades).
    pub fn root(&self) -> &SimAbort {
        self.aborts
            .iter()
            .find(|a| !matches!(a.cause, AbortCause::PeerDown { .. }))
            .unwrap_or(&self.aborts[0])
    }
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation failed: PeerDown ({} processor(s) down)", self.aborts.len())?;
        for a in &self.aborts {
            writeln!(f, "  {a}")?;
        }
        write!(f, "  root cause: {}", self.root())
    }
}

impl std::error::Error for SimFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_eof() {
        let e = WireError::Eof { wanted: 8, available: 3 };
        assert!(e.to_string().contains("wanted 8"));
        assert!(e.to_string().contains("3 available"));
    }

    #[test]
    fn display_invalid() {
        assert!(WireError::Invalid("bad bool").to_string().contains("bad bool"));
    }

    #[test]
    fn display_rt_errors() {
        let e = RtError::BadProc { id: 9, nprocs: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        assert!(RtError::SelfSend(2).to_string().contains("2"));
        assert!(RtError::BadConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn wire_error_converts() {
        let e: RtError = WireError::Invalid("oops").into();
        assert!(matches!(e, RtError::Decode(_)));
    }

    #[test]
    fn sim_failure_reports_root_cause_and_peer_down() {
        let f = SimFailure {
            aborts: vec![
                SimAbort { proc: 0, cause: AbortCause::PeerDown { peer: 3 } },
                SimAbort { proc: 3, cause: AbortCause::Crashed { cycle: 1_000_000 } },
            ],
        };
        // Display must mention PeerDown (the CI fault-matrix greps it)
        // and pick the crash, not the cascade, as the root cause.
        let s = f.to_string();
        assert!(s.contains("PeerDown"), "{s}");
        assert!(s.contains("root cause: processor 3"), "{s}");
        assert_eq!(f.root().proc, 3);

        let all_cascade = SimFailure {
            aborts: vec![SimAbort { proc: 1, cause: AbortCause::PeerDown { peer: 2 } }],
        };
        assert_eq!(all_cascade.root().proc, 1);
    }

    #[test]
    fn abort_cause_display() {
        let c = AbortCause::RetryExhausted { dst: 2, tag: 7, attempts: 17 };
        let s = c.to_string();
        assert!(s.contains("processor 2") && s.contains("17 attempts"), "{s}");
    }
}
