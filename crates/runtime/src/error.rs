//! Error types for the runtime.

use std::fmt;

/// Errors produced while decoding a wire-format byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes before the value was complete.
    Eof {
        /// How many bytes the decoder wanted.
        wanted: usize,
        /// How many bytes were left.
        available: usize,
    },
    /// The bytes were structurally invalid for the expected type
    /// (e.g. a bad enum discriminant or a non-UTF-8 string).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { wanted, available } => write!(
                f,
                "unexpected end of wire data: wanted {wanted} bytes, {available} available"
            ),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors produced by runtime operations (message passing, topology use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A message destination or source was not a valid processor id.
    BadProc {
        /// The offending processor id.
        id: usize,
        /// Number of processors in the machine.
        nprocs: usize,
    },
    /// A message payload failed to decode as the requested type.
    Decode(WireError),
    /// A processor sent a message to itself, which the link model
    /// does not support (local data needs no message).
    SelfSend(usize),
    /// The machine configuration was inconsistent
    /// (e.g. mesh dimensions whose product is not the processor count).
    BadConfig(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::BadProc { id, nprocs } => {
                write!(f, "processor id {id} out of range (machine has {nprocs})")
            }
            RtError::Decode(e) => write!(f, "message decode failed: {e}"),
            RtError::SelfSend(id) => write!(f, "processor {id} attempted to send to itself"),
            RtError::BadConfig(msg) => write!(f, "bad machine configuration: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<WireError> for RtError {
    fn from(e: WireError) -> Self {
        RtError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_eof() {
        let e = WireError::Eof { wanted: 8, available: 3 };
        assert!(e.to_string().contains("wanted 8"));
        assert!(e.to_string().contains("3 available"));
    }

    #[test]
    fn display_invalid() {
        assert!(WireError::Invalid("bad bool").to_string().contains("bad bool"));
    }

    #[test]
    fn display_rt_errors() {
        let e = RtError::BadProc { id: 9, nprocs: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        assert!(RtError::SelfSend(2).to_string().contains("2"));
        assert!(RtError::BadConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn wire_error_converts() {
        let e: RtError = WireError::Invalid("oops").into();
        assert!(matches!(e, RtError::Decode(_)));
    }
}
