//! Error types for the runtime.

use std::fmt;

/// Errors produced while decoding a wire-format byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes before the value was complete.
    Eof {
        /// How many bytes the decoder wanted.
        wanted: usize,
        /// How many bytes were left.
        available: usize,
    },
    /// The bytes were structurally invalid for the expected type
    /// (e.g. a bad enum discriminant or a non-UTF-8 string).
    Invalid(&'static str),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { wanted, available } => write!(
                f,
                "unexpected end of wire data: wanted {wanted} bytes, {available} available"
            ),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors produced by runtime operations (message passing, topology use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A message destination or source was not a valid processor id.
    BadProc {
        /// The offending processor id.
        id: usize,
        /// Number of processors in the machine.
        nprocs: usize,
    },
    /// A message payload failed to decode as the requested type.
    Decode(WireError),
    /// A processor sent a message to itself, which the link model
    /// does not support (local data needs no message).
    SelfSend(usize),
    /// The machine configuration was inconsistent
    /// (e.g. mesh dimensions whose product is not the processor count).
    BadConfig(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::BadProc { id, nprocs } => {
                write!(f, "processor id {id} out of range (machine has {nprocs})")
            }
            RtError::Decode(e) => write!(f, "message decode failed: {e}"),
            RtError::SelfSend(id) => write!(f, "processor {id} attempted to send to itself"),
            RtError::BadConfig(msg) => write!(f, "bad machine configuration: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<WireError> for RtError {
    fn from(e: WireError) -> Self {
        RtError::Decode(e)
    }
}

/// Panic-message prefix that marks a *Skil-program* runtime error
/// (division by zero, out-of-bounds index, a misused array handle).
///
/// Both language engines raise these deterministic program-level errors
/// as string panics carrying this prefix; the machine's job wrapper
/// recognizes the prefix and converts the unwind into a structured
/// [`AbortCause::RuntimeError`] flowing through
/// [`Machine::try_run`](crate::Machine::try_run) — the processor is
/// marked down (blocked peers cascade as `PeerDown`) and the machine is
/// *not* poisoned, so a long-lived embedder such as `skild` keeps
/// serving from the same warm machine. Panics without the prefix remain
/// genuine bugs: they poison the machine and re-raise on the caller.
pub const RT_ERROR_PREFIX: &str = "skil runtime: ";

/// If `payload` (a panic payload) is a Skil runtime error per the
/// [`RT_ERROR_PREFIX`] contract, return its message with the prefix
/// stripped.
pub fn runtime_error_message(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())?;
    msg.strip_prefix(RT_ERROR_PREFIX)
}

/// Why a processor went down mid-run (fault injection, delivery-layer
/// give-up, or a Skil-program runtime error). Ordinary Rust panics in
/// user code are *not* represented here — they still poison the machine
/// and resume on the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortCause {
    /// The fault plan crashed this processor at the given virtual cycle.
    Crashed {
        /// The virtual cycle at which the crash fired.
        cycle: u64,
    },
    /// The reliable-delivery layer exhausted its retry budget sending to
    /// `dst` — the link (or peer) is considered dead.
    RetryExhausted {
        /// Destination processor of the undeliverable message.
        dst: usize,
        /// Message tag of the undeliverable message.
        tag: u64,
        /// Total transmission attempts made (1 original + retries).
        attempts: u32,
    },
    /// A peer this processor was communicating with went down; the
    /// failure cascades through the blocked receive.
    PeerDown {
        /// The processor that went down first.
        peer: usize,
    },
    /// The Skil program itself hit a deterministic runtime error
    /// (division by zero, out-of-bounds index, …) on this processor.
    /// See [`RT_ERROR_PREFIX`] for how engines raise these.
    RuntimeError {
        /// The diagnostic, without the [`RT_ERROR_PREFIX`].
        what: String,
    },
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::Crashed { cycle } => {
                write!(f, "crashed by fault plan at virtual cycle {cycle}")
            }
            AbortCause::RetryExhausted { dst, tag, attempts } => write!(
                f,
                "retry budget exhausted sending to processor {dst} (tag {tag}) after \
                 {attempts} attempts"
            ),
            AbortCause::PeerDown { peer } => {
                write!(f, "PeerDown: processor {peer} went down mid-run")
            }
            AbortCause::RuntimeError { what } => {
                write!(f, "Skil runtime error: {what}")
            }
        }
    }
}

/// The structured panic payload a processor unwinds with when it goes
/// down for a simulated (fault-model) reason. The machine's job wrapper
/// downcasts for this to distinguish simulated failures from genuine
/// bugs in user code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAbort {
    /// The processor that aborted.
    pub proc: usize,
    /// Why it aborted.
    pub cause: AbortCause,
}

impl fmt::Display for SimAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "processor {}: {}", self.proc, self.cause)
    }
}

impl std::error::Error for SimAbort {}

/// A whole-run failure: one or more processors went down for simulated
/// reasons. Returned by [`Machine::try_run`](crate::Machine::try_run)
/// instead of hanging or unwinding, so callers (and the `skilc` CLI) can
/// report it as a structured diagnostic.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Every processor that aborted, in processor-id order. The first
    /// entry with a non-`PeerDown` cause is the root failure.
    pub aborts: Vec<SimAbort>,
}

impl SimFailure {
    /// The root failure: the first abort whose cause is not a cascaded
    /// `PeerDown` (falls back to the first abort if all are cascades).
    pub fn root(&self) -> &SimAbort {
        self.aborts
            .iter()
            .find(|a| !matches!(a.cause, AbortCause::PeerDown { .. }))
            .unwrap_or(&self.aborts[0])
    }
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fault-model failures keep the historical "PeerDown" headline
        // (the CI fault matrix greps for it); program-level runtime
        // errors get an accurate one.
        let label = match self.root().cause {
            AbortCause::RuntimeError { .. } => "runtime error",
            _ => "PeerDown",
        };
        writeln!(f, "simulation failed: {label} ({} processor(s) down)", self.aborts.len())?;
        for a in &self.aborts {
            writeln!(f, "  {a}")?;
        }
        write!(f, "  root cause: {}", self.root())
    }
}

impl std::error::Error for SimFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_eof() {
        let e = WireError::Eof { wanted: 8, available: 3 };
        assert!(e.to_string().contains("wanted 8"));
        assert!(e.to_string().contains("3 available"));
    }

    #[test]
    fn display_invalid() {
        assert!(WireError::Invalid("bad bool").to_string().contains("bad bool"));
    }

    #[test]
    fn display_rt_errors() {
        let e = RtError::BadProc { id: 9, nprocs: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        assert!(RtError::SelfSend(2).to_string().contains("2"));
        assert!(RtError::BadConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn wire_error_converts() {
        let e: RtError = WireError::Invalid("oops").into();
        assert!(matches!(e, RtError::Decode(_)));
    }

    #[test]
    fn sim_failure_reports_root_cause_and_peer_down() {
        let f = SimFailure {
            aborts: vec![
                SimAbort { proc: 0, cause: AbortCause::PeerDown { peer: 3 } },
                SimAbort { proc: 3, cause: AbortCause::Crashed { cycle: 1_000_000 } },
            ],
        };
        // Display must mention PeerDown (the CI fault-matrix greps it)
        // and pick the crash, not the cascade, as the root cause.
        let s = f.to_string();
        assert!(s.contains("PeerDown"), "{s}");
        assert!(s.contains("root cause: processor 3"), "{s}");
        assert_eq!(f.root().proc, 3);

        let all_cascade = SimFailure {
            aborts: vec![SimAbort { proc: 1, cause: AbortCause::PeerDown { peer: 2 } }],
        };
        assert_eq!(all_cascade.root().proc, 1);
    }

    #[test]
    fn abort_cause_display() {
        let c = AbortCause::RetryExhausted { dst: 2, tag: 7, attempts: 17 };
        let s = c.to_string();
        assert!(s.contains("processor 2") && s.contains("17 attempts"), "{s}");
    }

    #[test]
    fn runtime_error_payloads_are_recognized() {
        // Both payload shapes a `panic!` can produce: a formatted String
        // and a `&'static str` literal.
        let s: Box<dyn std::any::Any + Send> =
            Box::new(format!("{RT_ERROR_PREFIX}integer division by zero"));
        assert_eq!(runtime_error_message(&*s), Some("integer division by zero"));
        let l: Box<dyn std::any::Any + Send> = Box::new("skil runtime: negative index");
        assert_eq!(runtime_error_message(&*l), Some("negative index"));
        // Unprefixed panics are genuine bugs, not runtime errors.
        let other: Box<dyn std::any::Any + Send> = Box::new("some unrelated panic".to_string());
        assert_eq!(runtime_error_message(&*other), None);
        let non_string: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(runtime_error_message(&*non_string), None);
    }

    #[test]
    fn runtime_error_failure_display_names_the_error() {
        let f = SimFailure {
            aborts: vec![
                SimAbort { proc: 1, cause: AbortCause::PeerDown { peer: 0 } },
                SimAbort {
                    proc: 0,
                    cause: AbortCause::RuntimeError { what: "integer division by zero".into() },
                },
            ],
        };
        let s = f.to_string();
        assert!(s.contains("runtime error"), "{s}");
        assert!(s.contains("root cause: processor 0: Skil runtime error"), "{s}");
        assert!(s.contains("integer division by zero"), "{s}");
    }
}
