//! Deterministic fault injection: seeded plans for message drop, delay,
//! duplication and whole-processor crashes.
//!
//! The paper's target machine — a 64-node transputer mesh under Parix —
//! lived with link and node failures as an operational reality that the
//! skeleton library simply assumed away. Here faults are first-class but
//! **reproducible**: every injection decision is a pure function of
//! `(seed, src, dst, tag, seq, attempt)` computed with a splitmix64-style
//! hash, so a fault plan replays bit-identically on every host, thread
//! schedule, and engine. No host randomness is consulted anywhere.
//!
//! A [`FaultPlan`] is attached to a machine with
//! [`MachineConfig::with_faults`](crate::MachineConfig::with_faults); the
//! reliable-delivery layer in [`Proc`](crate::Proc) consults it on every
//! point-to-point transmission (collectives included, since they are
//! built from the same sends). With [`FaultPlan::none`] — the default —
//! the layer is entirely disabled and charge-free: golden `sim_cycles`
//! are bit-identical to a build without the subsystem.

use std::fmt;

/// The fate of one transmission attempt, as decided by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The attempt is lost in flight; the ack never comes and the sender
    /// retransmits after its (virtual-time) retry timeout.
    Drop,
    /// The attempt reaches the receiver.
    Deliver {
        /// Extra in-flight latency injected on top of the modeled
        /// transit time, in virtual cycles (0 = on time).
        extra_delay: u64,
        /// The envelope is delivered twice (e.g. a retransmission whose
        /// original was only delayed, or a lost ack). The receiver's
        /// sequence numbers suppress the second copy.
        duplicate: bool,
    },
}

/// A deterministic, seeded fault-injection plan.
///
/// Rates are probabilities in `[0, 1]`, applied per transmission attempt
/// via the pure hash — there is no RNG state, so concurrent senders
/// cannot perturb each other's fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Thresholds out of 2^32 (fixed-point probabilities).
    drop_bar: u64,
    dup_bar: u64,
    delay_bar: u64,
    /// Injected delays are uniform in `1..=max_delay` cycles.
    max_delay: u64,
    /// Initial retransmit timeout in virtual cycles; attempt `k`
    /// retransmits after `rto << (k-1)` (exponential backoff, capped).
    rto: u64,
    /// Maximum number of retransmissions per message before the link is
    /// declared dead ([`AbortCause::RetryExhausted`]).
    ///
    /// [`AbortCause::RetryExhausted`]: crate::error::AbortCause::RetryExhausted
    budget: u32,
    /// `(proc, cycle)`: processor `proc` dies when its virtual clock
    /// reaches `cycle`.
    crashes: Vec<(usize, u64)>,
    active: bool,
}

/// Fixed-point scale for the per-attempt probabilities.
const BAR_ONE: u64 = 1 << 32;

/// Default initial retransmit timeout (2.5 ms of T800 time at 20 MHz).
const DEFAULT_RTO: u64 = 50_000;

/// Default retry budget. With a drop rate `p` the chance a message
/// exhausts the budget is `p^(budget+1)` — at `p = 0.3` that is under
/// 1e-8, so recoverable plans stay recoverable for realistic run sizes.
const DEFAULT_BUDGET: u32 = 16;

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn bar(rate: f64) -> u64 {
    ((rate.clamp(0.0, 1.0) * BAR_ONE as f64) as u64).min(BAR_ONE)
}

impl FaultPlan {
    /// The empty plan: no faults, and the reliable-delivery layer is
    /// bypassed entirely (the data plane is exactly the fault-free one).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_bar: 0,
            dup_bar: 0,
            delay_bar: 0,
            max_delay: 0,
            rto: DEFAULT_RTO,
            budget: DEFAULT_BUDGET,
            crashes: Vec::new(),
            active: false,
        }
    }

    /// An active (but initially fault-free) plan with the given seed.
    /// Attach rates with the builder methods. An active plan with zero
    /// rates exercises the whole ack/sequence-number machinery without
    /// injecting anything — virtual time must be bit-identical to
    /// [`FaultPlan::none`], which the fault-tolerance tests pin.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { active: true, seed, ..FaultPlan::none() }
    }

    /// Probability that any single transmission attempt is dropped.
    pub fn with_drop(mut self, rate: f64) -> Self {
        self.drop_bar = bar(rate);
        self
    }

    /// Probability that a delivered attempt is duplicated.
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_bar = bar(rate);
        self
    }

    /// Probability that a delivered attempt is delayed, and the maximum
    /// injected delay in cycles (uniform in `1..=max_delay`).
    pub fn with_delay(mut self, rate: f64, max_delay: u64) -> Self {
        self.delay_bar = bar(rate);
        self.max_delay = max_delay.max(1);
        self
    }

    /// Kill processor `proc` when its virtual clock reaches `cycle`.
    pub fn with_crash(mut self, proc: usize, cycle: u64) -> Self {
        self.crashes.push((proc, cycle));
        self
    }

    /// Replace the initial retransmit timeout (virtual cycles).
    pub fn with_rto(mut self, rto: u64) -> Self {
        self.rto = rto.max(1);
        self
    }

    /// Replace the retry budget (maximum retransmissions per message).
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// Whether the reliable-delivery layer should engage at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The plan's seed (diagnostics).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum retransmissions per message.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Virtual-time delay before retransmission `attempt` (1-based)
    /// fires: `rto << (attempt-1)`, capped to avoid overflow.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = (attempt.saturating_sub(1)).min(20);
        self.rto.saturating_mul(1u64 << shift)
    }

    /// The crash cycle for `proc`, if the plan schedules one.
    pub fn crash_cycle(&self, proc: usize) -> Option<u64> {
        self.crashes.iter().find(|&&(p, _)| p == proc).map(|&(_, c)| c)
    }

    /// Scheduled crashes, `(proc, cycle)` pairs in plan order.
    pub fn crashes(&self) -> &[(usize, u64)] {
        &self.crashes
    }

    fn hash(&self, salt: u64, src: usize, dst: usize, tag: u64, seq: u64, attempt: u32) -> u64 {
        let mut z = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = mix(z ^ (src as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
        z = mix(z ^ (dst as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        z = mix(z ^ tag);
        z = mix(z ^ seq);
        mix(z ^ attempt as u64)
    }

    /// Decide the fate of transmission attempt `attempt` of the message
    /// with per-flow sequence number `seq` on the flow
    /// `(src, dst, tag)`. Pure: the same arguments always yield the
    /// same fate, on every host and schedule.
    pub fn fate(&self, src: usize, dst: usize, tag: u64, seq: u64, attempt: u32) -> Fate {
        let roll = |salt: u64| self.hash(salt, src, dst, tag, seq, attempt) >> 32;
        if roll(1) < self.drop_bar {
            return Fate::Drop;
        }
        let extra_delay = if self.delay_bar > 0 && roll(2) < self.delay_bar {
            1 + self.hash(3, src, dst, tag, seq, attempt) % self.max_delay
        } else {
            0
        };
        let duplicate = self.dup_bar > 0 && roll(4) < self.dup_bar;
        Fate::Deliver { extra_delay, duplicate }
    }

    /// Parse a `skilc --faults` spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,drop=0.05,dup=0.02,delay=0.1,max_delay=20000,crash=3@1000000,rto=50000,budget=16
    /// ```
    ///
    /// `drop`/`dup`/`delay` are rates in `[0,1]`; `max_delay`, `rto` are
    /// virtual cycles; `crash=PROC@CYCLE` may repeat. Any spec (even with
    /// all rates zero) produces an *active* plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(0);
        let mut max_delay: Option<u64> = None;
        let mut delay_rate: Option<f64> = None;
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item {part:?} is not key=value"))?;
            let num = |what: &str| -> Result<u64, String> {
                val.parse::<u64>().map_err(|_| format!("bad {what} value {val:?}"))
            };
            let rate = |what: &str| -> Result<f64, String> {
                let r = val.parse::<f64>().map_err(|_| format!("bad {what} rate {val:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("{what} rate {val} outside [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => plan.seed = num("seed")?,
                "drop" => plan = plan.with_drop(rate("drop")?),
                "dup" => plan = plan.with_dup(rate("dup")?),
                "delay" => delay_rate = Some(rate("delay")?),
                "max_delay" => max_delay = Some(num("max_delay")?.max(1)),
                "rto" => plan = plan.with_rto(num("rto")?),
                "budget" => {
                    plan = plan.with_budget(
                        val.parse::<u32>().map_err(|_| format!("bad budget value {val:?}"))?,
                    )
                }
                "crash" => {
                    let (p, c) = val
                        .split_once('@')
                        .ok_or_else(|| format!("crash spec {val:?} is not PROC@CYCLE"))?;
                    let proc = p.parse::<usize>().map_err(|_| format!("bad crash proc {p:?}"))?;
                    let cycle = c.parse::<u64>().map_err(|_| format!("bad crash cycle {c:?}"))?;
                    plan = plan.with_crash(proc, cycle);
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        if let Some(r) = delay_rate {
            // Default injected delays to one default RTO so a delay-only
            // plan visibly perturbs arrival times.
            plan = plan.with_delay(r, max_delay.unwrap_or(DEFAULT_RTO));
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.active {
            return write!(f, "none");
        }
        write!(
            f,
            "seed={} drop={:.4} dup={:.4} delay={:.4}/{} rto={} budget={}",
            self.seed,
            self.drop_bar as f64 / BAR_ONE as f64,
            self.dup_bar as f64 / BAR_ONE as f64,
            self.delay_bar as f64 / BAR_ONE as f64,
            self.max_delay,
            self.rto,
            self.budget
        )?;
        for (p, c) in &self.crashes {
            write!(f, " crash={p}@{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_fault_free() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for attempt in 0..8 {
            assert_eq!(
                plan.fate(0, 1, 7, 0, attempt),
                Fate::Deliver { extra_delay: 0, duplicate: false }
            );
        }
        assert_eq!(plan.crash_cycle(0), None);
    }

    #[test]
    fn fate_is_pure_and_seed_dependent() {
        let a = FaultPlan::seeded(42).with_drop(0.5).with_dup(0.3).with_delay(0.4, 1000);
        let b = FaultPlan::seeded(42).with_drop(0.5).with_dup(0.3).with_delay(0.4, 1000);
        let c = FaultPlan::seeded(43).with_drop(0.5).with_dup(0.3).with_delay(0.4, 1000);
        let mut diverged = false;
        for seq in 0..64u64 {
            for attempt in 0..4 {
                assert_eq!(a.fate(1, 2, 9, seq, attempt), b.fate(1, 2, 9, seq, attempt));
                diverged |= a.fate(1, 2, 9, seq, attempt) != c.fate(1, 2, 9, seq, attempt);
            }
        }
        assert!(diverged, "different seeds should produce different schedules");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::seeded(7).with_drop(0.25);
        let drops = (0..4000u64).filter(|&s| plan.fate(0, 1, 3, s, 0) == Fate::Drop).count();
        // 4000 Bernoulli(0.25) trials: expect ~1000, allow a wide band.
        assert!((700..1300).contains(&drops), "drop count {drops} far from expectation");
    }

    #[test]
    fn zero_and_one_rates_are_exact() {
        let never = FaultPlan::seeded(1);
        for s in 0..200u64 {
            assert_eq!(
                never.fate(0, 1, 1, s, 0),
                Fate::Deliver { extra_delay: 0, duplicate: false }
            );
        }
        let always = FaultPlan::seeded(1).with_drop(1.0);
        for s in 0..200u64 {
            assert_eq!(always.fate(0, 1, 1, s, 0), Fate::Drop);
        }
    }

    #[test]
    fn delays_stay_in_range() {
        let plan = FaultPlan::seeded(3).with_delay(1.0, 500);
        for s in 0..500u64 {
            match plan.fate(2, 3, 11, s, 0) {
                Fate::Deliver { extra_delay, .. } => {
                    assert!((1..=500).contains(&extra_delay), "delay {extra_delay}")
                }
                Fate::Drop => panic!("drop rate is zero"),
            }
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let plan = FaultPlan::seeded(0).with_rto(100);
        assert_eq!(plan.backoff(1), 100);
        assert_eq!(plan.backoff(2), 200);
        assert_eq!(plan.backoff(5), 1600);
        // Far past the cap: saturates rather than overflowing.
        assert!(plan.backoff(200) >= plan.backoff(21));
    }

    #[test]
    fn crash_schedule_lookup() {
        let plan = FaultPlan::seeded(0).with_crash(3, 1_000_000).with_crash(1, 5);
        assert_eq!(plan.crash_cycle(3), Some(1_000_000));
        assert_eq!(plan.crash_cycle(1), Some(5));
        assert_eq!(plan.crash_cycle(0), None);
        assert_eq!(plan.crashes(), &[(3, 1_000_000), (1, 5)]);
    }

    #[test]
    fn parse_round_trips_the_ci_specs() {
        let p = FaultPlan::parse("seed=42,drop=0.05,dup=0.02,delay=0.1,max_delay=20000").unwrap();
        assert!(p.is_active());
        assert_eq!(p.seed(), 42);
        let q = FaultPlan::parse("seed=3,crash=3@1000000").unwrap();
        assert_eq!(q.crash_cycle(3), Some(1_000_000));
        let r = FaultPlan::parse("seed=1,rto=1000,budget=4").unwrap();
        assert_eq!(r.budget(), 4);
        assert_eq!(r.backoff(1), 1000);
        // A delay rate without max_delay gets a sane default.
        let d = FaultPlan::parse("seed=9,delay=0.5").unwrap();
        match d.fate(0, 1, 1, 0, 0) {
            Fate::Deliver { .. } | Fate::Drop => {}
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop",
            "drop=x",
            "drop=1.5",
            "crash=3",
            "crash=x@1",
            "crash=1@y",
            "wat=1",
            "budget=-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn display_summarizes_the_plan() {
        assert_eq!(FaultPlan::none().to_string(), "none");
        let s = FaultPlan::seeded(5).with_drop(0.1).with_crash(2, 99).to_string();
        assert!(s.contains("seed=5"), "{s}");
        assert!(s.contains("crash=2@99"), "{s}");
    }
}
