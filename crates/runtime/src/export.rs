//! Structured exports of a [`RunReport`].
//!
//! Two hand-rolled (dependency-free) JSON documents:
//!
//! * [`RunReport::metrics_json`] — a metrics document: run totals,
//!   per-processor counters, per-skeleton aggregates and the src→dst
//!   communication matrix (schema `skil-metrics-v1`);
//! * [`RunReport::chrome_trace_json`] — the traced spans in the Chrome
//!   `trace_events` format, loadable in `chrome://tracing` or Perfetto,
//!   with virtual cycles mapped to microseconds via the machine's clock
//!   rate (schema `skil-trace-v1`).
//!
//! Both emitters iterate processors in id order and spans in recorded
//! order and aggregate labels through a `BTreeMap`, so for a
//! deterministic simulation the output bytes are deterministic too —
//! the observability golden tests rely on that.

use std::fmt::Write;

use crate::report::RunReport;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number. Rust's `Display` for `f64` never
/// produces exponent notation, so the output is valid JSON; non-finite
/// values (which JSON cannot represent) become `null`.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Render a `u64` matrix row-major slice as nested JSON arrays.
fn matrix_json(n: usize, cells: &[u64]) -> String {
    let mut out = String::from("[");
    for src in 0..n {
        if src > 0 {
            out.push(',');
        }
        out.push('[');
        for dst in 0..n {
            if dst > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", cells[src * n + dst]);
        }
        out.push(']');
    }
    out.push(']');
    out
}

impl RunReport {
    /// Serialize the run's metrics as a JSON document: totals,
    /// per-processor counters, per-skeleton aggregates (from the traced
    /// spans), and the communication matrix (`null` unless the run was
    /// traced). Output is byte-deterministic for a deterministic run.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"skil-metrics-v1\",");
        let _ = writeln!(out, "  \"sim_cycles\": {},", self.sim_cycles);
        let _ = writeln!(out, "  \"sim_seconds\": {},", num(self.sim_seconds));
        let _ = writeln!(out, "  \"clock_hz\": {},", num(self.clock_hz));
        let _ = writeln!(out, "  \"nprocs\": {},", self.procs.len());
        let _ = writeln!(out, "  \"topology\": \"{}\",", esc(&self.topology.spec()));
        let _ = writeln!(
            out,
            "  \"totals\": {{\"msgs\": {}, \"bytes_sent\": {}, \"bytes_recvd\": {}, \
             \"compute_cycles\": {}, \"wait_cycles\": {}, \"efficiency\": {}}},",
            self.total_msgs(),
            self.total_bytes(),
            self.total_bytes_recvd(),
            self.total_compute(),
            self.total_wait(),
            num(self.efficiency())
        );
        let (retries, drops, dups, delays) =
            self.procs.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, p| {
                let s = p.stats;
                (acc.0 + s.retries, acc.1 + s.drops, acc.2 + s.dups, acc.3 + s.delays)
            });
        let _ = writeln!(
            out,
            "  \"faults\": {{\"retries\": {retries}, \"drops\": {drops}, \"dups\": {dups}, \
             \"delays\": {delays}}},"
        );
        // Host data-plane counters (additive to skil-metrics-v1). These
        // describe how envelopes moved on the host — payload
        // representation and delivery path — and are deterministic for a
        // fixed machine configuration, so the byte-identity guarantee
        // holds; they differ across *schedulers*, which the exports never
        // compare.
        let dp = self.data_plane();
        let _ = writeln!(
            out,
            "  \"data_plane\": {{\"inline_msgs\": {}, \"heap_msgs\": {}, \
             \"direct_deliveries\": {}, \"condvar_deliveries\": {}}},",
            dp.inline_msgs, dp.heap_msgs, dp.direct_deliveries, dp.condvar_deliveries
        );
        out.push_str("  \"procs\": [\n");
        for (id, p) in self.procs.iter().enumerate() {
            let s = p.stats;
            let _ = writeln!(
                out,
                "    {{\"id\": {id}, \"finished_at\": {}, \"compute\": {}, \"wait\": {}, \
                 \"sends\": {}, \"recvs\": {}, \"bytes_sent\": {}, \"bytes_recvd\": {}}}{}",
                p.finished_at,
                s.compute,
                s.wait,
                s.sends,
                s.recvs,
                s.bytes_sent,
                s.bytes_recvd,
                if id + 1 < self.procs.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        let skel = self.skeleton_metrics();
        out.push_str("  \"skeletons\": {");
        for (i, (label, m)) in skel.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"invocations\": {}, \"cycles\": {}, \"sends\": {}, \
                 \"recvs\": {}, \"bytes_sent\": {}, \"bytes_recvd\": {}}}",
                if i > 0 { "," } else { "" },
                esc(label),
                m.invocations,
                m.cycles,
                m.sends,
                m.recvs,
                m.bytes_sent,
                m.bytes_recvd
            );
        }
        out.push_str(if skel.is_empty() { "},\n" } else { "\n  },\n" });
        match self.comm_matrix() {
            Some(cm) => {
                // The hop metric of the run's topology for every src→dst
                // pair — what the cost model charged routed traffic with.
                let hops: Vec<u64> = (0..cm.n)
                    .flat_map(|src| (0..cm.n).map(move |dst| (src, dst)))
                    .map(|(src, dst)| self.topology.hops(src, dst) as u64)
                    .collect();
                let _ = writeln!(
                    out,
                    "  \"comm_matrix\": {{\"msgs\": {}, \"bytes\": {}, \"hops\": {}}}",
                    matrix_json(cm.n, &cm.msgs),
                    matrix_json(cm.n, &cm.bytes),
                    matrix_json(cm.n, &hops)
                );
            }
            None => out.push_str("  \"comm_matrix\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Serialize the traced spans in Chrome's `trace_events` format
    /// (load the file in `chrome://tracing` or <https://ui.perfetto.dev>).
    /// Each span becomes a complete (`"ph": "X"`) event on the thread of
    /// its processor; `ts`/`dur` are microseconds of simulated time
    /// (`cycles * 1e6 / clock_hz`). Per-span traffic counters ride along
    /// in `args`. Output is byte-deterministic for a deterministic run.
    pub fn chrome_trace_json(&self) -> String {
        // 20 MHz T800: one cycle is 0.05 us, so three decimals are exact.
        let us_per_cycle = if self.clock_hz > 0.0 { 1e6 / self.clock_hz } else { 0.0 };
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"otherData\": {{\"schema\": \"skil-trace-v1\", \"sim_cycles\": {}, \
             \"clock_hz\": {}, \"nprocs\": {}}},",
            self.sim_cycles,
            num(self.clock_hz),
            self.procs.len()
        );
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        out.push_str("  \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("    ");
            out.push_str(&line);
        };
        push(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {\"name\": \"skil-sim\"}}"
                .into(),
            &mut first,
        );
        for id in 0..self.procs.len() {
            push(
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {id}, \
                     \"args\": {{\"name\": \"proc {id}\"}}}}"
                ),
                &mut first,
            );
        }
        for (id, p) in self.procs.iter().enumerate() {
            for ev in &p.trace {
                if matches!(ev.kind, crate::report::TraceKind::Span) {
                    push(
                        format!(
                            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {id}, \
                             \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"cycles\": {}, \
                             \"sends\": {}, \"recvs\": {}, \"bytes_sent\": {}, \
                             \"bytes_recvd\": {}}}}}",
                            esc(&ev.label),
                            ev.start as f64 * us_per_cycle,
                            ev.cycles() as f64 * us_per_cycle,
                            ev.cycles(),
                            ev.sends,
                            ev.recvs,
                            ev.bytes_sent,
                            ev.bytes_recvd
                        ),
                        &mut first,
                    );
                } else {
                    // Fault events are zero-width: thread-scoped instant
                    // events at the virtual time they fired.
                    push(
                        format!(
                            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                             \"tid\": {id}, \"ts\": {:.3}}}",
                            esc(&ev.label),
                            ev.start as f64 * us_per_cycle,
                        ),
                        &mut first,
                    );
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{Machine, MachineConfig};

    fn traced_run() -> crate::RunReport {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap().with_trace());
        m.run(|p| {
            let span = p.span_begin();
            if p.id() == 0 {
                p.send(1, 1, &[1u32, 2]);
            } else {
                let _: [u32; 2] = p.recv(0, 1);
            }
            p.span_end("xchg", span);
        })
        .report
    }

    #[test]
    fn metrics_json_contains_all_sections() {
        let j = traced_run().metrics_json();
        for key in [
            "skil-metrics-v1",
            "\"topology\": \"mesh2d:1x2\"",
            "\"totals\"",
            "\"procs\"",
            "\"skeletons\"",
            "\"xchg\"",
            "\"comm_matrix\"",
            "\"hops\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains("null"), "traced run must have a matrix: {j}");
    }

    #[test]
    fn metrics_json_without_tracing_has_null_matrix() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let r = m
            .run(|p| {
                if p.id() == 0 {
                    p.send(1, 1, &1u8);
                } else {
                    let _: u8 = p.recv(0, 1);
                }
            })
            .report;
        let j = r.metrics_json();
        assert!(j.contains("\"comm_matrix\": null"), "{j}");
        assert!(j.contains("\"skeletons\": {}"), "{j}");
    }

    #[test]
    fn chrome_trace_has_spans_and_metadata() {
        let j = traced_run().chrome_trace_json();
        for key in ["\"traceEvents\"", "\"ph\": \"X\"", "\"ph\": \"M\"", "\"xchg\"", "proc 1"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn exports_are_deterministic() {
        let a = traced_run();
        let b = traced_run();
        assert_eq!(a.metrics_json(), b.metrics_json());
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    }

    #[test]
    fn metrics_json_reports_fault_totals() {
        use crate::fault::FaultPlan;
        let j = traced_run().metrics_json();
        assert!(
            j.contains("\"faults\": {\"retries\": 0, \"drops\": 0, \"dups\": 0, \"delays\": 0}"),
            "fault-free run must report all-zero fault totals: {j}"
        );

        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_trace()
                .with_faults(FaultPlan::seeded(11).with_drop(0.5).with_dup(0.5)),
        );
        let r = m
            .run(|p| {
                if p.id() == 0 {
                    for round in 0..20u64 {
                        p.send(1, round, &round);
                    }
                } else {
                    for round in 0..20u64 {
                        let _: u64 = p.recv(0, round);
                    }
                }
            })
            .report;
        let j = r.metrics_json();
        assert!(j.contains("\"faults\": {\"retries\": "), "{j}");
        assert!(
            !j.contains("\"faults\": {\"retries\": 0, \"drops\": 0, \"dups\": 0, \"delays\": 0}"),
            "a 50% fault plan must report nonzero activity: {j}"
        );
        // Fault instants ride the skeleton-metrics aggregation too.
        assert!(j.contains("fault."), "fault events should appear among skeletons: {j}");
    }

    #[test]
    fn chrome_trace_renders_fault_instants() {
        use crate::fault::FaultPlan;
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_trace()
                .with_faults(FaultPlan::seeded(11).with_drop(0.5)),
        );
        let r = m
            .run(|p| {
                if p.id() == 0 {
                    for round in 0..20u64 {
                        p.send(1, round, &round);
                    }
                } else {
                    for round in 0..20u64 {
                        let _: u64 = p.recv(0, round);
                    }
                }
            })
            .report;
        let j = r.chrome_trace_json();
        assert!(j.contains("\"ph\": \"i\""), "expected instant events: {j}");
        assert!(j.contains("fault.drop"), "{j}");
    }

    #[test]
    fn label_escaping() {
        let mut r = traced_run();
        r.procs[0].trace[0].label = "we\"ird\\lab\nel".into();
        let j = r.chrome_trace_json();
        assert!(j.contains("we\\\"ird\\\\lab\\nel"), "{j}");
    }
}
