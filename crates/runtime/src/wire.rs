//! The wire format: *flattening* and *unflattening* of values.
//!
//! The paper (and its companion \[2\], "Using Algorithmic Skeletons with
//! Dynamic Data Structures") requires that skeletons which move elements of
//! a `pardata` between processors do not move pointers but the data pointed
//! to, via user-supplied flatten/unflatten functions. [`Wire`] is the Rust
//! rendering of that contract: a self-describing, pointer-free byte
//! encoding. All multi-byte integers are little-endian; containers are
//! length-prefixed with a `u64`.

use crate::error::WireError;

/// A cursor over received bytes.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader over a full message payload.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof { wanted: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

/// Types that can be flattened into a message and unflattened on the other
/// side. This is the mechanism the paper calls "'flattening'/'unflattening'
/// of data" for moving `pardata` elements between processors.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn flatten(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.flatten(&mut v);
        v
    }

    /// Decode a complete buffer, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::unflatten(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn flatten(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as u64).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::unflatten(r)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Wire for isize {
    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as i64).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = i64::unflatten(r)?;
        isize::try_from(v).map_err(|_| WireError::Invalid("isize overflow"))
    }
}

impl Wire for bool {
    fn flatten(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bad bool")),
        }
    }
}

impl Wire for char {
    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as u32).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        char::from_u32(u32::unflatten(r)?).ok_or(WireError::Invalid("bad char"))
    }
}

impl Wire for () {
    fn flatten(&self, _out: &mut Vec<u8>) {}
    fn unflatten(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn flatten(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.flatten(out);
            }
        }
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::unflatten(r)?)),
            _ => Err(WireError::Invalid("bad Option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn flatten(&self, out: &mut Vec<u8>) {
        (self.len() as u64).flatten(out);
        for v in self {
            v.flatten(out);
        }
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = u64::unflatten(r)? as usize;
        // Guard against hostile lengths: each element costs at least one
        // byte on the wire except `()`, which we cap separately.
        let mut v = Vec::with_capacity(n.min(r.remaining().max(16)));
        for _ in 0..n {
            v.push(T::unflatten(r)?);
        }
        Ok(v)
    }
}

impl Wire for String {
    fn flatten(&self, out: &mut Vec<u8>) {
        (self.len() as u64).flatten(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = u64::unflatten(r)? as usize;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("bad utf8"))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn flatten(&self, out: &mut Vec<u8>) {
        for v in self {
            v.flatten(out);
        }
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Decode into a Vec first; N is small in practice (Index/Size).
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::unflatten(r)?);
        }
        v.try_into().map_err(|_| WireError::Invalid("array length"))
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn flatten(&self, out: &mut Vec<u8>) {
                $(self.$idx.flatten(out);)+
            }
            fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::unflatten(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-5i8);
        roundtrip(0xBEEFu16);
        roundtrip(-1234i16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(-9isize);
        roundtrip(1.5f32);
        roundtrip(-2.25e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip('ß');
        roundtrip(());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip("hällo wörld".to_string());
        roundtrip(String::new());
        roundtrip([1u32, 2, 3]);
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip(vec![(1u32, "a".to_string()), (2, "b".to_string())]);
        roundtrip(vec![vec![1.0f64], vec![], vec![2.0, 3.0]]);
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::Invalid("bad bool")));
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert!(Option::<u8>::from_bytes(&[9, 1]).is_err());
    }

    #[test]
    fn eof_detected() {
        let e = u64::from_bytes(&[1, 2, 3]);
        assert_eq!(e, Err(WireError::Eof { wanted: 8, available: 3 }));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 7u8.to_bytes();
        bytes.push(0);
        assert_eq!(u8::from_bytes(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut bytes = Vec::new();
        2u64.flatten(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_vec_rejected() {
        let mut bytes = Vec::new();
        3u64.flatten(&mut bytes); // claims 3 elements
        1u32.flatten(&mut bytes); // provides 1
        assert!(Vec::<u32>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(0x0102u16.to_bytes(), vec![0x02, 0x01]);
        assert_eq!(1u64.to_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn vec_length_prefix() {
        let bytes = vec![9u8].to_bytes();
        assert_eq!(bytes.len(), 8 + 1);
        assert_eq!(bytes[0], 1); // length 1, little-endian
        assert_eq!(bytes[8], 9);
    }
}
