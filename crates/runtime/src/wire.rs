//! The wire format: *flattening* and *unflattening* of values.
//!
//! The paper (and its companion \[2\], "Using Algorithmic Skeletons with
//! Dynamic Data Structures") requires that skeletons which move elements of
//! a `pardata` between processors do not move pointers but the data pointed
//! to, via user-supplied flatten/unflatten functions. [`Wire`] is the Rust
//! rendering of that contract: a self-describing, pointer-free byte
//! encoding. All multi-byte integers are little-endian; containers are
//! length-prefixed with a `u64`.
//!
//! Flattened bytes are also the unit of *reliable delivery*: the fault
//! layer (DESIGN.md §12) drops, delays, or duplicates whole flattened
//! messages, never partial encodings, so a retransmitted or
//! duplicate-suppressed message unflattens exactly like the original.

use crate::error::WireError;

/// A cursor over received bytes.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader over a full message payload.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof { wanted: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

/// Cap on the claimed element count of a length-prefixed container whose
/// elements occupy **zero** wire bytes (`Vec<()>` and friends). Such a
/// prefix carries no evidence in the payload, so a hostile `u64::MAX`
/// would otherwise spin the decode loop for 2^64 iterations.
pub const MAX_ZERO_SIZE_ELEMS: usize = 1 << 24;

/// Types that can be flattened into a message and unflattened on the other
/// side. This is the mechanism the paper calls "'flattening'/'unflattening'
/// of data" for moving `pardata` elements between processors.
pub trait Wire: Sized {
    /// On-wire byte size, when every value of the type encodes to the
    /// same length (`None` for variable-size types such as `Vec`).
    /// Containers use it to validate hostile length prefixes up front and
    /// to size buffers exactly; the primitive fast paths rely on it.
    const WIRE_SIZE: Option<usize> = None;

    /// Append this value's encoding to `out`.
    fn flatten(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Bulk-encode a slice. The default loops per element; primitive
    /// (POD) types override it with a single block copy, which is what
    /// makes `Vec<f64>` partition moves cheap.
    fn flatten_slice(items: &[Self], out: &mut Vec<u8>) {
        for v in items {
            v.flatten(out);
        }
    }

    /// Bulk-decode exactly `n` values. The default loops per element
    /// with a conservative capacity guess; primitive (POD) types
    /// override it with a single block copy. Callers are expected to
    /// have validated `n` against [`Wire::WIRE_SIZE`] and the remaining
    /// input where possible.
    fn unflatten_many(r: &mut WireReader<'_>, n: usize) -> Result<Vec<Self>, WireError> {
        // Guard against hostile lengths for variable-size elements: never
        // pre-reserve more than the input could possibly hold.
        let mut v = Vec::with_capacity(n.min(r.remaining().max(16)));
        for _ in 0..n {
            v.push(Self::unflatten(r)?);
        }
        Ok(v)
    }

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.flatten(&mut v);
        v
    }

    /// Decode a complete buffer, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::unflatten(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

/// `Some(a + b)` when both sides are fixed-size (const-evaluable Option
/// addition, used by the tuple/array `WIRE_SIZE` definitions).
pub const fn wire_size_sum(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const WIRE_SIZE: Option<usize> = Some(core::mem::size_of::<$t>());

            fn flatten(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }

            fn flatten_slice(items: &[Self], out: &mut Vec<u8>) {
                #[cfg(target_endian = "little")]
                {
                    // SAFETY: primitives have no padding and the wire
                    // format is little-endian, so on a little-endian host
                    // the in-memory bytes ARE the encoding.
                    let bytes = unsafe {
                        core::slice::from_raw_parts(
                            items.as_ptr() as *const u8,
                            core::mem::size_of_val(items),
                        )
                    };
                    out.extend_from_slice(bytes);
                }
                #[cfg(not(target_endian = "little"))]
                for v in items {
                    v.flatten(out);
                }
            }

            fn unflatten_many(r: &mut WireReader<'_>, n: usize) -> Result<Vec<Self>, WireError> {
                const SIZE: usize = core::mem::size_of::<$t>();
                let total = n
                    .checked_mul(SIZE)
                    .ok_or(WireError::Invalid("container length prefix overflows"))?;
                let bytes = r.take(total)?;
                #[cfg(target_endian = "little")]
                {
                    let mut v: Vec<$t> = Vec::with_capacity(n);
                    // SAFETY: the freshly allocated buffer holds `n`
                    // elements; every bit pattern is a valid $t; and the
                    // little-endian wire bytes are the host
                    // representation. One memcpy replaces the per-element
                    // decode loop.
                    unsafe {
                        core::ptr::copy_nonoverlapping(
                            bytes.as_ptr(),
                            v.as_mut_ptr() as *mut u8,
                            total,
                        );
                        v.set_len(n);
                    }
                    Ok(v)
                }
                #[cfg(not(target_endian = "little"))]
                {
                    Ok(bytes
                        .chunks_exact(SIZE)
                        .map(|c| <$t>::from_le_bytes(c.try_into().expect("chunk size")))
                        .collect())
                }
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    const WIRE_SIZE: Option<usize> = Some(8);

    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as u64).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::unflatten(r)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Wire for isize {
    const WIRE_SIZE: Option<usize> = Some(8);

    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as i64).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = i64::unflatten(r)?;
        isize::try_from(v).map_err(|_| WireError::Invalid("isize overflow"))
    }
}

impl Wire for bool {
    const WIRE_SIZE: Option<usize> = Some(1);

    fn flatten(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bad bool")),
        }
    }
}

impl Wire for char {
    const WIRE_SIZE: Option<usize> = Some(4);

    fn flatten(&self, out: &mut Vec<u8>) {
        (*self as u32).flatten(out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        char::from_u32(u32::unflatten(r)?).ok_or(WireError::Invalid("bad char"))
    }
}

impl Wire for () {
    const WIRE_SIZE: Option<usize> = Some(0);

    fn flatten(&self, _out: &mut Vec<u8>) {}
    fn unflatten(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn flatten(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.flatten(out);
            }
        }
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::unflatten(r)?)),
            _ => Err(WireError::Invalid("bad Option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn flatten(&self, out: &mut Vec<u8>) {
        (self.len() as u64).flatten(out);
        T::flatten_slice(self, out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n64 = u64::unflatten(r)?;
        let n = usize::try_from(n64)
            .map_err(|_| WireError::Invalid("container length prefix overflows"))?;
        // Validate the claimed count against the actual input before any
        // allocation or decode work.
        match T::WIRE_SIZE {
            // Zero-size elements leave no trace in the payload; cap the
            // count so a hostile prefix cannot spin the decoder.
            Some(0) if n > MAX_ZERO_SIZE_ELEMS => {
                return Err(WireError::Invalid("zero-size element count exceeds cap"));
            }
            Some(0) => {}
            Some(size) => {
                let total = n
                    .checked_mul(size)
                    .ok_or(WireError::Invalid("container length prefix overflows"))?;
                if total > r.remaining() {
                    return Err(WireError::Eof { wanted: total, available: r.remaining() });
                }
            }
            // Variable-size elements: unflatten_many's capacity guard
            // applies, and the per-element decode hits Eof naturally.
            None => {}
        }
        T::unflatten_many(r, n)
    }
}

impl Wire for String {
    fn flatten(&self, out: &mut Vec<u8>) {
        (self.len() as u64).flatten(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = u64::unflatten(r)? as usize;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("bad utf8"))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    const WIRE_SIZE: Option<usize> = match T::WIRE_SIZE {
        Some(size) => Some(size * N),
        None => None,
    };

    fn flatten(&self, out: &mut Vec<u8>) {
        T::flatten_slice(self, out);
    }
    fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Decode straight into the array — no heap detour. `from_fn`
        // cannot early-return, so a decode error is parked in `err` and
        // the affected slots are left as `None`.
        let mut err = None;
        let parts: [Option<T>; N] = core::array::from_fn(|_| {
            if err.is_some() {
                return None;
            }
            match T::unflatten(r) {
                Ok(v) => Some(v),
                Err(e) => {
                    err = Some(e);
                    None
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(parts.map(|v| v.expect("filled when no error"))),
        }
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            const WIRE_SIZE: Option<usize> = {
                let acc = Some(0usize);
                $(let acc = wire_size_sum(acc, $name::WIRE_SIZE);)+
                acc
            };

            fn flatten(&self, out: &mut Vec<u8>) {
                $(self.$idx.flatten(out);)+
            }
            fn unflatten(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::unflatten(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-5i8);
        roundtrip(0xBEEFu16);
        roundtrip(-1234i16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(-9isize);
        roundtrip(1.5f32);
        roundtrip(-2.25e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip('ß');
        roundtrip(());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip("hällo wörld".to_string());
        roundtrip(String::new());
        roundtrip([1u32, 2, 3]);
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip(vec![(1u32, "a".to_string()), (2, "b".to_string())]);
        roundtrip(vec![vec![1.0f64], vec![], vec![2.0, 3.0]]);
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::Invalid("bad bool")));
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert!(Option::<u8>::from_bytes(&[9, 1]).is_err());
    }

    #[test]
    fn eof_detected() {
        let e = u64::from_bytes(&[1, 2, 3]);
        assert_eq!(e, Err(WireError::Eof { wanted: 8, available: 3 }));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 7u8.to_bytes();
        bytes.push(0);
        assert_eq!(u8::from_bytes(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut bytes = Vec::new();
        2u64.flatten(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_vec_rejected() {
        let mut bytes = Vec::new();
        3u64.flatten(&mut bytes); // claims 3 elements
        1u32.flatten(&mut bytes); // provides 1
        assert!(Vec::<u32>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(0x0102u16.to_bytes(), vec![0x02, 0x01]);
        assert_eq!(1u64.to_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn vec_length_prefix() {
        let bytes = vec![9u8].to_bytes();
        assert_eq!(bytes.len(), 8 + 1);
        assert_eq!(bytes[0], 1); // length 1, little-endian
        assert_eq!(bytes[8], 9);
    }

    #[test]
    fn hostile_zero_size_element_count_capped() {
        // A `Vec<()>` prefix claiming u64::MAX elements must be rejected
        // quickly, not spin the decode loop for 2^64 iterations.
        let bytes = u64::MAX.to_bytes();
        assert_eq!(
            Vec::<()>::from_bytes(&bytes),
            Err(WireError::Invalid("zero-size element count exceeds cap"))
        );
        // Same through a nested container element.
        let hostile = u64::MAX.to_bytes();
        assert!(Vec::<((), ())>::from_bytes(&hostile).is_err());
        // At or below the cap still works.
        let mut ok = Vec::new();
        3u64.flatten(&mut ok);
        assert_eq!(Vec::<()>::from_bytes(&ok), Ok(vec![(), (), ()]));
    }

    #[test]
    fn hostile_fixed_size_prefix_rejected_before_allocation() {
        // Claims 2^61 f64s with an 8-byte payload: must fail up front
        // (Eof) rather than attempt a huge reservation.
        let mut bytes = (1u64 << 61).to_bytes();
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        match Vec::<f64>::from_bytes(&bytes) {
            Err(WireError::Eof { .. }) | Err(WireError::Invalid(_)) => {}
            other => panic!("hostile prefix accepted: {other:?}"),
        }
        // And a count whose byte total overflows usize.
        let overflow = u64::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&overflow).is_err());
    }

    #[test]
    fn array_decode_needs_no_heap_and_errors_cleanly() {
        let v: [u64; 3] = [7, 8, 9];
        roundtrip(v);
        // Truncated input surfaces the element error.
        let mut bytes = v.to_bytes();
        bytes.truncate(20);
        assert!(<[u64; 3]>::from_bytes(&bytes).is_err());
        // Zero-length arrays are fine.
        roundtrip::<[u32; 0]>([]);
    }

    #[test]
    fn wire_size_consts() {
        assert_eq!(u8::WIRE_SIZE, Some(1));
        assert_eq!(f64::WIRE_SIZE, Some(8));
        assert_eq!(<()>::WIRE_SIZE, Some(0));
        assert_eq!(<(u8, u32)>::WIRE_SIZE, Some(5));
        assert_eq!(<[f32; 4]>::WIRE_SIZE, Some(16));
        assert_eq!(<Vec<u8>>::WIRE_SIZE, None);
        assert_eq!(<(u8, String)>::WIRE_SIZE, None);
        assert_eq!(<[Vec<u8>; 2]>::WIRE_SIZE, None);
    }

    #[test]
    fn bulk_and_generic_paths_agree() {
        // The POD override must emit exactly the bytes of the per-element
        // path (the proptest in tests/props.rs covers this broadly).
        let vals = vec![0.5f64, -1.25, f64::MAX, f64::MIN_POSITIVE, 0.0, -0.0];
        let mut generic = Vec::new();
        (vals.len() as u64).flatten(&mut generic);
        for v in &vals {
            v.flatten(&mut generic);
        }
        assert_eq!(vals.to_bytes(), generic);
        assert_eq!(Vec::<f64>::from_bytes(&generic).unwrap(), vals);
    }
}
