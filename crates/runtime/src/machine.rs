//! The machine: configuration and SPMD execution.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::collective::CollectiveAlgo;
use crate::coro::{self, StackPool, Task, TaskBody, TaskFrame};
use crate::cost::CostModel;
use crate::error::{runtime_error_message, AbortCause, RtError, SimAbort, SimFailure};
use crate::fault::FaultPlan;
use crate::mailbox::{Gate, Mailbox};
use crate::proc::{Proc, Shared};
use crate::report::{ProcReport, RunReport};
use crate::sched::{worker_loop, EventSched};
use crate::topology::{Mesh, Topology};

/// Which execution core drives the simulated processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Discrete-event core (the default): every processor is a stackful
    /// coroutine task scheduled by virtual time from a ready heap onto a
    /// small fixed pool of host workers. Host cost grows with *activity*,
    /// not processor count, so thousands of processors fit on one host.
    Event,
    /// Legacy thread-per-processor core (`SKIL_SCHEDULER=threads`): one
    /// long-lived OS thread per simulated processor, kept for
    /// differential testing against the event core.
    Threads,
}

/// Configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// The logical process grid (row-major ids; arrays are laid out on
    /// it). Always equal to `topology.grid()`.
    pub mesh: Mesh,
    /// The physical interconnect. Defaults to [`Topology::Mesh2d`] of
    /// `mesh`, which reproduces the seed simulator bit for bit; other
    /// topologies change only the hop metric messages are priced with.
    pub topology: Topology,
    /// Which allreduce algorithm the collectives use.
    /// [`CollectiveAlgo::Tree`] (the paper's binomial tree) by default;
    /// `None` here resolves from `SKIL_COLLECTIVE_ALGO`.
    pub collective_algo: Option<CollectiveAlgo>,
    /// Cost model (defaults to the calibrated T800).
    pub cost: CostModel,
    /// Real-time budget before a blocked `recv` reports a deadlock
    /// (thread scheduler only; the event scheduler detects deadlock
    /// structurally, with no timeout).
    pub deadlock_timeout: Duration,
    /// Record per-processor skeleton trace events.
    pub trace: bool,
    /// Fault-injection plan ([`FaultPlan::none`] by default: the
    /// reliable-delivery layer is bypassed and the data plane is exactly
    /// the fault-free one, pinned bit-identical by the golden tests).
    pub faults: FaultPlan,
    /// Scheduler override; `None` resolves from `SKIL_SCHEDULER`
    /// (default [`SchedulerKind::Event`]).
    pub scheduler: Option<SchedulerKind>,
    /// Host-parallelism override; `None` resolves from
    /// `SKIL_WORKER_THREADS`. Under the event scheduler this is the
    /// worker-pool size; under the thread scheduler it is the permit
    /// count of the concurrency gate. Either way it is a pure host
    /// throttle — virtual time cannot observe it.
    pub workers: Option<usize>,
}

impl MachineConfig {
    /// A `rows x cols` mesh with the default cost model.
    pub fn mesh(rows: usize, cols: usize) -> Result<Self, RtError> {
        let mesh = Mesh::new(rows, cols)?;
        Ok(MachineConfig {
            mesh,
            topology: Topology::Mesh2d(mesh),
            collective_algo: None,
            cost: CostModel::t800(),
            deadlock_timeout: Duration::from_secs(20),
            trace: false,
            faults: FaultPlan::none(),
            scheduler: None,
            workers: None,
        })
    }

    /// A square `side x side` mesh.
    pub fn square(side: usize) -> Result<Self, RtError> {
        Self::mesh(side, side)
    }

    /// `n` processors on the most nearly square mesh.
    pub fn procs(n: usize) -> Result<Self, RtError> {
        let mesh = Mesh::near_square(n)?;
        Ok(MachineConfig { mesh, topology: Topology::Mesh2d(mesh), ..Self::mesh(1, 1)? })
    }

    /// A machine wired as `topology`; the logical process grid becomes
    /// [`Topology::grid`] of it.
    pub fn on_topology(topology: Topology) -> Result<Self, RtError> {
        let grid = topology.grid();
        Ok(MachineConfig { mesh: grid, topology, ..Self::mesh(1, 1)? })
    }

    /// Replace the physical interconnect (and the process grid with the
    /// topology's).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.mesh = topology.grid();
        self.topology = topology;
        self
    }

    /// Force a collective algorithm, overriding `SKIL_COLLECTIVE_ALGO`.
    pub fn with_collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.collective_algo = Some(algo);
        self
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the deadlock timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.deadlock_timeout = t;
        self
    }

    /// Enable per-processor skeleton tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Attach a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Force a scheduler, overriding `SKIL_SCHEDULER` (differential
    /// tests use this instead of racing on process-global env vars).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = Some(kind);
        self
    }

    /// Bound host parallelism, overriding `SKIL_WORKER_THREADS`: event
    /// workers or thread-gate permits, depending on the scheduler.
    pub fn with_workers(mut self, k: usize) -> Self {
        self.workers = Some(k.max(1));
        self
    }
}

/// Results of one simulation: the per-processor return values (indexed by
/// processor id) and the timing report.
#[derive(Debug)]
pub struct Run<R> {
    /// What each processor's program returned.
    pub results: Vec<R>,
    /// Simulated timing and traffic.
    pub report: RunReport,
}

/// A simulated distributed-memory machine.
///
/// `run` executes one SPMD program: the same closure on every processor,
/// each with its own [`Proc`] handle. Under the default event scheduler
/// every processor is a coroutine task multiplexed onto a small worker
/// pool, so meshes of thousands of processors fit on one host; under
/// `SKIL_SCHEDULER=threads` each processor owns a host thread. Virtual
/// time is fully deterministic for programs whose receives name their
/// source (all skeletons do), independent of host scheduling *and* of
/// the scheduler choice — CI pins golden `sim_cycles` across both.
///
/// ```
/// use skil_runtime::{Machine, MachineConfig};
///
/// let m = Machine::new(MachineConfig::mesh(2, 2).unwrap());
/// let run = m.run(|p| {
///     if p.id() == 0 {
///         p.send(1, 7, &123u32);
///         0
///     } else if p.id() == 1 {
///         p.recv::<u32>(0, 7)
///     } else {
///         0
///     }
/// });
/// assert_eq!(run.results[1], 123);
/// assert!(run.report.sim_cycles > 0);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    backend: Backend,
    /// Parked per-run allocations (mailboxes, abort flags, event
    /// scheduler) from completed runs, ready for the next run to reuse —
    /// the warm-machine floor reduction. One entry per concurrently
    /// finished run; `run` pops one entry or builds fresh state.
    arena: Mutex<Vec<RunArena>>,
    /// How many runs reused a parked arena instead of allocating.
    reuse_hits: AtomicU64,
}

/// The per-run allocations a warm machine keeps between runs. Everything
/// in here is *reset* (not rebuilt) at park time: mailboxes drain their
/// queues and clear their park registrations, abort flags drop to
/// `false`, and the event scheduler rearms with every task live — so a
/// reused run starts from exactly the state a fresh allocation would
/// have, which is what keeps warm reuse bit-identical.
struct RunArena {
    mailboxes: Vec<Mailbox>,
    downs: Vec<AtomicBool>,
    causes: Vec<Option<AbortCause>>,
    sched: Option<Arc<EventSched>>,
}

/// The execution core a machine was built with.
enum Backend {
    /// Event scheduler: `workers` host threads drive every processor as
    /// a coroutine task; `stacks` recycles coroutine stacks across runs.
    Event { pool: WorkerPool, stacks: StackPool, workers: usize },
    /// Thread scheduler: one worker thread per processor, with the
    /// optional `SKIL_WORKER_THREADS` permit gate.
    Threads { pool: WorkerPool, gate: Option<Arc<Gate>> },
}

/// `SKIL_MAX_HOST_THREADS`: a self-imposed cap on worker threads one
/// machine may spawn, used by CI and the scale bench to demonstrate that
/// large meshes are infeasible thread-per-processor while the event
/// scheduler completes them under the same limit.
fn max_host_threads() -> Option<usize> {
    std::env::var("SKIL_MAX_HOST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&k| k >= 1)
}

/// Parse an env var as a `usize >= 1`.
fn env_count(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&k| k >= 1)
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cfg", &self.cfg)
            .field("scheduler", &self.scheduler())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Build a machine from a configuration. The machine owns its worker
    /// threads for its whole lifetime; repeated `run` calls dispatch onto
    /// those instead of spawning fresh threads. The scheduler resolves
    /// from the config override, then `SKIL_SCHEDULER` (`event` |
    /// `threads`), defaulting to the event core.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.mesh.procs();
        let kind = cfg
            .scheduler
            .or_else(|| match std::env::var("SKIL_SCHEDULER").ok().as_deref().map(str::trim) {
                Some("threads") | Some("thread") => Some(SchedulerKind::Threads),
                Some("event") | Some("events") => Some(SchedulerKind::Event),
                _ => None,
            })
            .unwrap_or(SchedulerKind::Event);
        // Targets without a coroutine context switch fall back to the
        // thread scheduler (identical virtual time, bounded scale).
        let kind = if coro::SUPPORTED { kind } else { SchedulerKind::Threads };
        let backend = match kind {
            SchedulerKind::Event => {
                let workers = cfg
                    .workers
                    .or_else(|| env_count("SKIL_WORKER_THREADS"))
                    .unwrap_or_else(|| {
                        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8)
                    })
                    .min(n.max(1));
                let workers = match max_host_threads() {
                    Some(cap) => workers.min(cap),
                    None => workers,
                };
                // The calling thread acts as one of the workers for the
                // duration of a run (see `try_run_faults`), so the pool
                // only needs `workers - 1` threads — on a single-worker
                // host the event backend spawns no threads at all and a
                // run involves zero cross-thread dispatch.
                Backend::Event {
                    pool: WorkerPool::new(workers - 1, "sim-worker"),
                    stacks: StackPool::new(coro::stack_size()),
                    workers,
                }
            }
            SchedulerKind::Threads => {
                let gate = cfg
                    .workers
                    .or_else(|| env_count("SKIL_WORKER_THREADS"))
                    .filter(|&k| k < n)
                    .map(|k| Arc::new(Gate::new(k)));
                Backend::Threads { pool: WorkerPool::new(n, "proc"), gate }
            }
        };
        Machine { cfg, backend, arena: Mutex::new(Vec::new()), reuse_hits: AtomicU64::new(0) }
    }

    /// How many runs on this machine reused a parked run arena instead
    /// of allocating mailboxes and scheduler state from scratch — the
    /// warm-pool floor-reduction counter surfaced by the serving layer.
    pub fn setup_reuse_hits(&self) -> u64 {
        self.reuse_hits.load(Ordering::Relaxed)
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.cfg.mesh.procs()
    }

    /// The collective algorithm runs on this machine use: the config
    /// override, then `SKIL_COLLECTIVE_ALGO` (`tree` | `ring` | `rd` |
    /// `auto`). `None` leaves each collective its own default
    /// (binomial tree for the paper's allreduce, hop-metric
    /// auto-selection for the new allgather).
    fn resolved_collective_algo(&self) -> Option<CollectiveAlgo> {
        self.cfg.collective_algo.or_else(|| {
            std::env::var("SKIL_COLLECTIVE_ALGO").ok().as_deref().and_then(CollectiveAlgo::parse)
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Which scheduler this machine resolved to.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.backend {
            Backend::Event { .. } => SchedulerKind::Event,
            Backend::Threads { .. } => SchedulerKind::Threads,
        }
    }

    /// Run an SPMD program on every processor and collect the results.
    ///
    /// If any processor panics, the machine is poisoned (peers blocked in
    /// `recv` abort promptly) and the first panic is re-raised on the
    /// caller's thread. A *simulated* failure (fault-plan crash or
    /// delivery give-up) panics with the formatted
    /// [`SimFailure`](crate::error::SimFailure) — use
    /// [`try_run`](Machine::try_run) to handle it structurally.
    pub fn run<R, F>(&self, program: F) -> Run<R>
    where
        R: Send,
        F: Fn(&mut Proc<'_>) -> R + Sync,
    {
        self.try_run(program).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Run an SPMD program, reporting simulated failures (fault-plan
    /// crashes, exhausted retry budgets, and the `PeerDown` cascades
    /// they trigger) as a structured `Err` instead of a panic or a hang.
    /// Genuine panics in user code still poison the machine and re-raise
    /// on the caller's thread.
    pub fn try_run<R, F>(&self, program: F) -> Result<Run<R>, SimFailure>
    where
        R: Send,
        F: Fn(&mut Proc<'_>) -> R + Sync,
    {
        self.try_run_faults(None, program)
    }

    /// Like [`try_run`](Machine::try_run), but with the fault plan
    /// overridden for this run only. `None` uses the plan the machine
    /// was configured with. A warm machine can therefore be reused
    /// across requests that carry different fault plans — the serving
    /// layer's machine pool depends on this: every run builds its
    /// mailboxes, stats, and abort flags from scratch, so nothing of a
    /// previous run (or its plan) can leak into the next one.
    pub fn try_run_faults<R, F>(
        &self,
        faults: Option<&FaultPlan>,
        program: F,
    ) -> Result<Run<R>, SimFailure>
    where
        R: Send,
        F: Fn(&mut Proc<'_>) -> R + Sync,
    {
        install_quiet_panic_hook();
        let n = self.nprocs();
        // Per-run state: reuse a parked arena from a previous run when
        // one exists (the warm-pool fast path — no allocation, no
        // scheduler rebuild), otherwise allocate from scratch. Arenas
        // are reset when parked, so both paths start identical.
        let arena = lock(&self.arena).pop();
        if arena.is_some() {
            self.reuse_hits.fetch_add(1, Ordering::Relaxed);
        }
        let (mailboxes, downs, causes, sched) = match arena {
            Some(a) => (a.mailboxes, a.downs, a.causes, a.sched),
            None => (
                (0..n).map(|_| Mailbox::default()).collect(),
                (0..n).map(|_| AtomicBool::new(false)).collect(),
                vec![None; n],
                match &self.backend {
                    Backend::Event { workers, .. } => Some(Arc::new(EventSched::new(n, *workers))),
                    Backend::Threads { .. } => None,
                },
            ),
        };
        let shared = Shared {
            trace: self.cfg.trace,
            mesh: self.cfg.mesh,
            topo: self.cfg.topology,
            collective_algo: self.resolved_collective_algo(),
            cost: self.cfg.cost.clone(),
            deadlock_timeout: self.cfg.deadlock_timeout,
            mailboxes,
            poison: AtomicBool::new(false),
            faults: faults.unwrap_or(&self.cfg.faults).clone(),
            downs,
            down_causes: Mutex::new(causes),
            gate: match &self.backend {
                Backend::Threads { gate, .. } => gate.clone(),
                Backend::Event { .. } => None,
            },
            sched: sched.clone(),
        };
        let slots: Vec<Mutex<Option<ProcOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Latch::default();

        // Runs one processor's program against `proc`, recording the
        // outcome in its slot. Shared verbatim by both backends — the
        // only behavioural difference between schedulers is *where* the
        // body runs and how its receives wait.
        let proc_body = |id: usize, proc: &mut Proc<'_>| {
            let result = match catch_unwind(AssertUnwindSafe(|| program(proc))) {
                Ok(r) => Ok(r),
                // A structured simulated failure: mark this processor
                // down (waking blocked peers into `PeerDown`) without
                // poisoning the machine.
                Err(payload) => match payload.downcast::<SimAbort>() {
                    Ok(abort) => {
                        shared.mark_down(id, abort.cause.clone());
                        Err(JobFail::Abort(*abort))
                    }
                    Err(payload) => {
                        // A Skil-program runtime error (the
                        // `RT_ERROR_PREFIX` contract): structured, like
                        // a fault-model abort. Peers blocked on this
                        // processor cascade as `PeerDown`; the machine
                        // stays reusable.
                        if let Some(what) = runtime_error_message(&*payload) {
                            let cause = AbortCause::RuntimeError { what: what.to_string() };
                            shared.mark_down(id, cause.clone());
                            Err(JobFail::Abort(SimAbort { proc: id, cause }))
                        } else {
                            // A genuine bug in user code: poison.
                            shared.poison_all();
                            Err(JobFail::Panic(payload))
                        }
                    }
                },
            };
            let report = ProcReport {
                finished_at: proc.now(),
                stats: proc.stats(),
                data_plane: proc.data_plane(),
                trace: proc.take_trace(),
                comm: proc.take_comm(),
            };
            *lock(&slots[id]) = Some(ProcOutcome { result, report });
        };

        match &self.backend {
            Backend::Threads { pool, .. } => {
                // Holding the sender lock for the whole run serializes
                // concurrent `run` calls on one machine, so each worker
                // runs exactly one processor of one simulation at a time.
                let txs = lock(&pool.txs);
                let shared = &shared;
                let latch = &latch;
                let proc_body = &proc_body;
                // Dropped at scope end (or on an unwind mid-dispatch):
                // blocks until every job dispatched so far has finished,
                // which is what makes the borrow erasure below sound.
                let mut wait = DispatchWait { latch, expect: 0 };
                for id in 0..n {
                    let job = move || {
                        let _permit = shared.gate.as_deref().map(Gate::permit);
                        let mut proc = Proc::new(id, shared);
                        proc_body(id, &mut proc);
                        latch.count_up();
                    };
                    let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                    // SAFETY: the job borrows `shared`, `slots`, `latch`,
                    // and `program` (via `proc_body`) from this stack
                    // frame. `DispatchWait` waits for every dispatched
                    // job to complete before this frame can be left
                    // (normally or by unwinding), so the borrows outlive
                    // all uses. Workers never hold a job across
                    // iterations of their receive loop.
                    let job: Job = unsafe { std::mem::transmute(job) };
                    txs[id].send(job).expect("worker thread alive");
                    wait.expect += 1;
                }
            }
            Backend::Event { pool, stacks, workers } => {
                let ev: &EventSched = sched.as_deref().expect("event backend has a scheduler");
                let shared = &shared;
                let proc_body = &proc_body;
                // One coroutine task per processor, all ready at virtual
                // time 0. The pool's workers are idle until the
                // `worker_loop` jobs are dispatched below, so seeding the
                // ready heap during construction is race-free.
                let mut tasks: Vec<Task> = Vec::with_capacity(n);
                for id in 0..n {
                    let body = move |frame: *const TaskFrame| {
                        // SAFETY: the frame lives in the task's box for
                        // the task's whole lifetime.
                        let frame = unsafe { &*frame };
                        let mut proc = Proc::new(id, shared);
                        proc.set_parker(frame);
                        proc_body(id, &mut proc);
                    };
                    let body: Box<dyn FnOnce(*const TaskFrame) + Send + '_> = Box::new(body);
                    // SAFETY: same borrow-erasure argument as the thread
                    // backend — every task runs to completion before the
                    // dispatch scope below is left, because `worker_loop`
                    // only returns once all tasks are `Done` and
                    // `DispatchWait` joins every worker.
                    let body: TaskBody = unsafe { std::mem::transmute(body) };
                    tasks.push(Task::new(stacks, body));
                    ev.push_ready(id, 0);
                }
                {
                    let latch = &latch;
                    let tasks = &tasks;
                    let mut wait = DispatchWait { latch, expect: 0 };
                    {
                        let txs = lock(&pool.txs);
                        for w in 0..*workers - 1 {
                            let job = move || {
                                // worker_loop is panic-free by
                                // construction (task bodies contain
                                // their own unwinds); the catch is a
                                // backstop so a bug cannot kill the pool
                                // thread or hang the dispatch.
                                let _ = catch_unwind(AssertUnwindSafe(|| {
                                    worker_loop(ev, tasks, shared)
                                }));
                                latch.count_up();
                            };
                            let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                            // SAFETY: as above; `DispatchWait` joins
                            // every worker before the borrows go out of
                            // scope.
                            let job: Job = unsafe { std::mem::transmute(job) };
                            txs[w].send(job).expect("worker thread alive");
                            wait.expect += 1;
                        }
                    }
                    // The calling thread is the final worker: it drives
                    // the ready heap until every task is done. On a
                    // single-worker machine the whole simulation runs
                    // right here — no dispatch, no latch wait, no
                    // cross-thread handoff at all.
                    let _ = catch_unwind(AssertUnwindSafe(|| worker_loop(ev, tasks, shared)));
                    // `wait` drops here, joining the pool workers.
                }
                for t in tasks {
                    t.recycle(stacks);
                }
            }
        }

        let mut results = Vec::with_capacity(n);
        let mut procs = Vec::with_capacity(n);
        let mut aborts = Vec::new();
        let mut first_panic = None;
        for slot in &slots {
            let outcome = lock(slot).take().expect("worker completed its job");
            procs.push(outcome.report);
            match outcome.result {
                Ok(r) => results.push(r),
                Err(JobFail::Abort(abort)) => aborts.push(abort),
                Err(JobFail::Panic(payload)) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            // Poisoned run: drop its state rather than park it — the
            // next run allocates fresh.
            resume_unwind(payload);
        }
        // Park the run's allocations for the next run, reset to exactly
        // the state a fresh allocation would have. Structured failures
        // (`SimFailure`) park too: the abort flags and queues reset, and
        // `runtime_error_is_structured_and_does_not_poison` pins that a
        // machine stays usable after one.
        {
            let Shared { mailboxes, downs, down_causes, .. } = shared;
            for mb in &mailboxes {
                mb.reset();
            }
            for d in &downs {
                d.store(false, Ordering::Relaxed);
            }
            let mut causes = down_causes.into_inner().unwrap_or_else(|e| e.into_inner());
            causes.iter_mut().for_each(|c| *c = None);
            if let Some(s) = &sched {
                s.reset();
            }
            lock(&self.arena).push(RunArena { mailboxes, downs, causes, sched });
        }
        if !aborts.is_empty() {
            return Err(SimFailure { aborts });
        }

        let sim_cycles = procs.iter().map(|p| p.finished_at).max().unwrap_or(0);
        Ok(Run {
            results,
            report: RunReport {
                sim_cycles,
                sim_seconds: self.cfg.cost.seconds(sim_cycles),
                clock_hz: self.cfg.cost.clock_hz,
                topology: self.cfg.topology,
                procs,
            },
        })
    }
}

/// Install (once, process-wide) a panic-hook *filter* that silences the
/// deterministic unwinds the simulator uses for control flow — the
/// structured [`SimAbort`] payloads of fault-model crashes and the
/// [`RT_ERROR_PREFIX`](crate::error::RT_ERROR_PREFIX)-tagged Skil
/// runtime errors — and chains every other panic to whatever hook was
/// installed before. `std::sync::Once` makes the installation
/// idempotent and race-free: concurrent embedders (the `skild` request
/// workers, parallel tests) cannot double-install it or lose a user
/// hook to a take/set race, and a hook the user installs *afterwards*
/// still wins because this filter is only ever installed beneath it
/// once.
fn install_quiet_panic_hook() {
    static QUIET_ABORTS: std::sync::Once = std::sync::Once::new();
    QUIET_ABORTS.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let simulated = payload.downcast_ref::<SimAbort>().is_some()
                || payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied())
                    .is_some_and(|m| m.starts_with(crate::error::RT_ERROR_PREFIX));
            if !simulated {
                prev(info);
            }
        }));
    });
}

/// Lock a mutex, ignoring poisoning (worker state stays consistent; the
/// panic that poisoned it is re-raised through the run result).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Long-lived worker threads. Spawning a thread costs far more than a
/// simulated message, so machines that are run repeatedly (parameter
/// sweeps, benches, the tables) keep their workers across runs. The
/// thread backend owns one worker per simulated processor; the event
/// backend owns a small fixed pool that multiplexes every processor.
struct WorkerPool {
    txs: Mutex<Vec<mpsc::Sender<Job>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n: usize, name: &str) -> Self {
        if let Some(cap) = max_host_threads() {
            assert!(
                n <= cap,
                "machine needs {n} host threads, exceeding SKIL_MAX_HOST_THREADS={cap}; \
                 use the event scheduler (SKIL_SCHEDULER=event) to simulate large machines \
                 on a bounded worker pool"
            );
        }
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for id in 0..n {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{id}"))
                // Deep per-processor recursion (e.g. divide&conquer
                // skeletons) needs more than the default stack.
                .stack_size(8 * 1024 * 1024)
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn processor worker");
            txs.push(tx);
            handles.push(handle);
        }
        WorkerPool { txs: Mutex::new(txs), handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        lock(&self.txs).clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion counter for dispatched jobs.
#[derive(Default)]
struct Latch {
    done: Mutex<usize>,
    cond: Condvar,
}

impl Latch {
    fn count_up(&self) {
        *lock(&self.done) += 1;
        self.cond.notify_all();
    }

    fn wait_for(&self, n: usize) {
        let mut done = lock(&self.done);
        while *done < n {
            done = self.cond.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Waits (on drop) for every job dispatched so far, so stack borrows
/// handed to the pool cannot dangle even if dispatch unwinds.
struct DispatchWait<'a> {
    latch: &'a Latch,
    expect: usize,
}

impl Drop for DispatchWait<'_> {
    fn drop(&mut self) {
        self.latch.wait_for(self.expect);
    }
}

/// How one processor's job ended, when not successfully.
enum JobFail {
    /// A structured simulated failure (crash / retry give-up / cascade).
    Abort(SimAbort),
    /// A genuine panic payload from user code.
    Panic(Box<dyn std::any::Any + Send>),
}

struct ProcOutcome<R> {
    result: Result<R, JobFail>,
    report: ProcReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn spmd_ids_cover_machine() {
        let m = Machine::new(MachineConfig::mesh(2, 3).unwrap());
        let run = m.run(|p| p.id());
        assert_eq!(run.results, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_proc_machine() {
        let m = Machine::new(MachineConfig::procs(1).unwrap());
        let run = m.run(|p| {
            p.charge(500);
            p.nprocs()
        });
        assert_eq!(run.results, vec![1]);
        assert_eq!(run.report.sim_cycles, 500);
    }

    #[test]
    fn ping_pong_advances_time() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let run = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 1, &7u64);
                p.recv::<u64>(1, 2)
            } else {
                let v: u64 = p.recv(0, 1);
                p.send(0, 2, &(v * 2));
                v
            }
        });
        assert_eq!(run.results, vec![14, 7]);
        let c = CostModel::t800();
        // Two messages of 8 bytes, one hop each, plus CPU charges.
        let min_time = 2 * c.transit(8, 1);
        assert!(run.report.sim_cycles >= min_time);
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let m = Machine::new(MachineConfig::mesh(2, 2).unwrap());
        let runner = || {
            m.run(|p| {
                // A small ring circulation with some compute skew.
                p.charge(100 * (p.id() as u64 + 1));
                let next = (p.id() + 1) % p.nprocs();
                let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
                p.send(next, 9, &(p.id() as u64));
                let got: u64 = p.recv(prev, 9);
                p.charge(50);
                got
            })
        };
        let a = runner();
        let b = runner();
        assert_eq!(a.report.sim_cycles, b.report.sim_cycles);
        assert_eq!(a.results, b.results);
        for (pa, pb) in a.report.procs.iter().zip(&b.report.procs) {
            assert_eq!(pa.finished_at, pb.finished_at);
            assert_eq!(pa.stats, pb.stats);
        }
    }

    #[test]
    fn async_send_overlaps_compute() {
        // With async sends the receiver that computes long enough never
        // waits; with sync sends the sender's clock absorbs the transit.
        let big = vec![0u8; 10_000];
        let cfg = MachineConfig::mesh(1, 2).unwrap();
        let c = cfg.cost.clone();
        let m = Machine::new(cfg);
        let transit = c.transit(10_000 + 8, 1);

        let run_async = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 1, &big);
                p.now()
            } else {
                p.charge(transit * 2); // compute past the arrival
                let before = p.now();
                let _: Vec<u8> = p.recv(0, 1);
                p.now() - before // only the recv CPU charge, no wait
            }
        });
        assert_eq!(run_async.results[1], c.recv_cpu);
        // Async sender's clock saw only the send CPU charge.
        assert_eq!(run_async.results[0], c.send_cpu);

        let run_sync = m.run(|p| {
            if p.id() == 0 {
                p.send_sync(1, 1, &big);
                p.now()
            } else {
                let _: Vec<u8> = p.recv(0, 1);
                0
            }
        });
        // Sync sender blocked for the whole transit.
        assert_eq!(run_sync.results[0], c.send_cpu + transit);
    }

    #[test]
    fn wait_time_recorded() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let run = m.run(|p| {
            if p.id() == 0 {
                p.charge(1_000_000); // send late
                p.send(1, 1, &1u8);
            } else {
                let _: u8 = p.recv(0, 1);
            }
        });
        let waiter = run.report.procs[1].stats;
        assert!(waiter.wait > 900_000, "receiver should have waited, got {waiter:?}");
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn panic_propagates() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let _ = m.run(|p| {
            if p.id() == 0 {
                panic!("deliberate");
            } else {
                // This would deadlock forever without poisoning.
                let _: u8 = p.recv(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "deadlock suspected")]
    fn deadlock_detected() {
        let m = Machine::new(
            MachineConfig::mesh(1, 2).unwrap().with_timeout(Duration::from_millis(100)),
        );
        let _ = m.run(|p| {
            if p.id() == 1 {
                let _: u8 = p.recv(0, 42); // nobody ever sends
            }
        });
    }

    #[test]
    #[should_panic(expected = "pending (src, tag) envelope(s): [(0, 7)]")]
    fn deadlock_diagnostic_lists_pending_envelopes() {
        // Proc 0 sends tag 7, but proc 1 waits on tag 42: the misrouted
        // envelope must be named in the deadlock panic.
        let m = Machine::new(
            MachineConfig::mesh(1, 2).unwrap().with_timeout(Duration::from_millis(100)),
        );
        let _ = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 7, &9u8);
            } else {
                let _: u8 = p.recv(0, 42);
            }
        });
    }

    #[test]
    fn spans_carry_traffic_counters() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap().with_trace());
        let run = m.run(|p| {
            let span = p.span_begin();
            if p.id() == 0 {
                p.send(1, 1, &[1u64, 2, 3]);
            } else {
                let _: [u64; 3] = p.recv(0, 1);
            }
            p.span_end("xchg", span);
        });
        let s = &run.report.procs[0].trace[0];
        assert_eq!((s.sends, s.bytes_sent, s.recvs, s.bytes_recvd), (1, 24, 0, 0));
        let r = &run.report.procs[1].trace[0];
        assert_eq!((r.sends, r.bytes_sent, r.recvs, r.bytes_recvd), (0, 0, 1, 24));
        assert_eq!(s.label, "xchg");
        assert!(s.end >= s.start);
    }

    #[test]
    fn comm_matrix_recorded_only_when_tracing() {
        let program = |p: &mut crate::Proc<'_>| {
            if p.id() == 0 {
                p.send(1, 1, &[7u8; 10]);
                p.send(1, 2, &3u16);
            } else {
                let _: [u8; 10] = p.recv(0, 1);
                let _: u16 = p.recv(0, 2);
                p.send(0, 3, &1u8);
            }
            let _: u8 = if p.id() == 0 { p.recv(1, 3) } else { 0 };
        };
        let plain = Machine::new(MachineConfig::mesh(1, 2).unwrap()).run(program);
        assert!(plain.report.comm_matrix().is_none());

        let traced = Machine::new(MachineConfig::mesh(1, 2).unwrap().with_trace()).run(program);
        let m = traced.report.comm_matrix().expect("tracing records rows");
        assert_eq!(m.msgs_at(0, 1), 2);
        assert_eq!(m.bytes_at(0, 1), 12);
        assert_eq!(m.msgs_at(1, 0), 1);
        assert_eq!(m.bytes_at(1, 0), 1);
        // Receiver-side rows agree with the sender-side matrix.
        let p1 = traced.report.procs[1].comm.as_ref().unwrap();
        assert_eq!(p1.recvd_msgs[0], 2);
        assert_eq!(p1.recvd_bytes[0], 12);
        // Byte conservation holds machine-wide.
        assert_eq!(traced.report.total_bytes(), traced.report.total_bytes_recvd());
    }

    #[test]
    fn stats_count_traffic() {
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let run = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 1, &[1u64, 2, 3]); // fixed-size array: 24 bytes
            } else {
                let _: [u64; 3] = p.recv(0, 1);
            }
        });
        assert_eq!(run.report.total_msgs(), 1);
        assert_eq!(run.report.total_bytes(), 24);
        assert_eq!(run.report.procs[1].stats.recvs, 1);
    }

    #[test]
    fn crash_surfaces_as_structured_failure_not_a_hang() {
        use crate::error::AbortCause;
        // Proc 0 crashes at cycle 1000; proc 1 blocks on a message that
        // will never come. Without down-propagation this would sit on the
        // deadlock timeout (set absurdly high here to prove the wakeup is
        // event-driven, not timeout-driven).
        let start = std::time::Instant::now();
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_timeout(Duration::from_secs(600))
                .with_faults(FaultPlan::seeded(1).with_crash(0, 1000)),
        );
        let failure = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.charge(5_000); // crosses the crash cycle
                    p.send(1, 1, &1u8);
                } else {
                    let _: u8 = p.recv(0, 1);
                }
            })
            .expect_err("the crash must fail the run");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "peers should abort promptly, took {:?}",
            start.elapsed()
        );
        assert_eq!(failure.root().proc, 0);
        assert!(matches!(failure.root().cause, AbortCause::Crashed { cycle: 1000 }));
        // The blocked peer cascaded with PeerDown rather than hanging.
        assert!(failure
            .aborts
            .iter()
            .any(|a| a.proc == 1 && matches!(a.cause, AbortCause::PeerDown { peer: 0 })));
        assert!(failure.to_string().contains("PeerDown"));
    }

    #[test]
    fn messages_sent_before_a_crash_still_deliver() {
        // Crash after the send: the receiver must still get the message,
        // then finish normally — only the crashed processor aborts.
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_faults(FaultPlan::seeded(2).with_crash(0, 2_000_000)),
        );
        let failure = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.send(1, 3, &42u8);
                    p.charge(3_000_000); // now crash
                    0
                } else {
                    p.recv::<u8>(0, 3)
                }
            })
            .expect_err("proc 0 crashed");
        assert_eq!(failure.aborts.len(), 1, "only the crashed processor aborts: {failure}");
        assert_eq!(failure.root().proc, 0);
    }

    #[test]
    fn crash_cascades_along_wait_chains() {
        // 1x3 chain: 2 waits on 1, 1 waits on 0, 0 crashes. The cascade
        // must reach processor 2 through the intermediate hop.
        let m = Machine::new(
            MachineConfig::mesh(1, 3)
                .unwrap()
                .with_timeout(Duration::from_secs(600))
                .with_faults(FaultPlan::seeded(3).with_crash(0, 100)),
        );
        let start = std::time::Instant::now();
        let failure = m
            .try_run(|p| match p.id() {
                0 => {
                    p.charge(200);
                    p.send(1, 1, &1u8);
                }
                1 => {
                    let v: u8 = p.recv(0, 1);
                    p.send(2, 2, &v);
                }
                _ => {
                    let _: u8 = p.recv(1, 2);
                }
            })
            .expect_err("crash fails the run");
        assert!(start.elapsed() < Duration::from_secs(30));
        assert_eq!(failure.aborts.len(), 3);
        assert!(matches!(failure.root().cause, crate::error::AbortCause::Crashed { .. }));
    }

    #[test]
    fn reliable_delivery_masks_drops_and_dups() {
        // A lossy plan with plenty of retry budget: the ring program must
        // produce exactly the fault-free results, with nonzero fault
        // counters in the report and untouched logical traffic counters.
        let program = |p: &mut Proc<'_>| {
            p.charge(100 * (p.id() as u64 + 1));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            for round in 0..10u64 {
                p.send(next, 9 + round, &(p.id() as u64 + round));
            }
            let mut got = 0;
            for round in 0..10u64 {
                got += p.recv::<u64>(prev, 9 + round);
            }
            got
        };
        let clean = Machine::new(MachineConfig::mesh(2, 2).unwrap()).run(program);
        let faulty = Machine::new(MachineConfig::mesh(2, 2).unwrap().with_faults(
            FaultPlan::seeded(7).with_drop(0.3).with_dup(0.3).with_delay(0.3, 50_000),
        ));
        let a = faulty.run(program);
        let b = faulty.run(program);
        assert_eq!(a.results, clean.results, "faults must be invisible to the program");
        assert_eq!(a.results, b.results);
        assert_eq!(a.report.sim_cycles, b.report.sim_cycles, "fault schedule is deterministic");
        let fault_events: u64 = a.report.procs.iter().map(|p| p.stats.fault_events()).sum();
        assert!(fault_events > 0, "a 30% fault plan must actually inject faults");
        for (pa, pc) in a.report.procs.iter().zip(&clean.report.procs) {
            assert_eq!(pa.stats.compute, pc.stats.compute, "fault layer must charge no compute");
            assert_eq!(pa.stats.sends, pc.stats.sends, "logical sends counted once");
            assert_eq!(pa.stats.recvs, pc.stats.recvs, "suppressed dups not counted");
            assert_eq!(pa.stats.bytes_sent, pc.stats.bytes_sent);
            assert_eq!(pa.stats.bytes_recvd, pc.stats.bytes_recvd);
        }
    }

    #[test]
    fn zero_rate_active_plan_is_bit_identical_to_no_plan() {
        // The whole ack/sequence machinery engaged but injecting nothing:
        // virtual time and stats must equal the fault-free machine's.
        let program = |p: &mut Proc<'_>| {
            p.charge(70 * (p.id() as u64 + 3));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            p.send(next, 5, &[p.id() as u64; 4]);
            let got: [u64; 4] = p.recv(prev, 5);
            got[0]
        };
        let clean = Machine::new(MachineConfig::mesh(2, 2).unwrap()).run(program);
        let armed =
            Machine::new(MachineConfig::mesh(2, 2).unwrap().with_faults(FaultPlan::seeded(99)))
                .run(program);
        assert_eq!(armed.results, clean.results);
        assert_eq!(armed.report.sim_cycles, clean.report.sim_cycles);
        for (pa, pc) in armed.report.procs.iter().zip(&clean.report.procs) {
            assert_eq!(pa.finished_at, pc.finished_at);
            assert_eq!(pa.stats, pc.stats);
        }
    }

    #[test]
    fn exhausted_retry_budget_is_a_structured_failure() {
        use crate::error::AbortCause;
        // Drop rate 1.0: no attempt ever lands, the sender gives up after
        // its budget and the run fails with RetryExhausted — not a hang.
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_timeout(Duration::from_secs(600))
                .with_faults(FaultPlan::seeded(4).with_drop(1.0).with_budget(3)),
        );
        let start = std::time::Instant::now();
        let failure = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.send(1, 1, &1u8);
                } else {
                    let _: u8 = p.recv(0, 1);
                }
            })
            .expect_err("the send can never be delivered");
        assert!(start.elapsed() < Duration::from_secs(30));
        match failure.root().cause {
            AbortCause::RetryExhausted { dst, attempts, .. } => {
                assert_eq!(dst, 1);
                assert_eq!(attempts, 4, "1 original + budget retries");
            }
            ref other => panic!("unexpected root cause {other:?}"),
        }
    }

    #[test]
    fn run_panics_with_peer_down_on_simulated_failure() {
        // The panicking `run` façade must surface the structured message
        // (so legacy callers fail loudly with the diagnostic, not a hang).
        let m = Machine::new(
            MachineConfig::mesh(1, 2).unwrap().with_faults(FaultPlan::seeded(5).with_crash(1, 10)),
        );
        let err = catch_unwind(AssertUnwindSafe(|| {
            m.run(|p| {
                if p.id() == 1 {
                    p.charge(100);
                } else {
                    let _: u8 = p.recv(1, 1);
                }
            })
        }))
        .expect_err("simulated failure must panic through run()");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into());
        assert!(msg.contains("PeerDown"), "panic message should name PeerDown: {msg}");
    }

    #[test]
    fn worker_gate_does_not_change_virtual_time() {
        // Directly exercise a 1-permit gate (the SKIL_WORKER_THREADS=1
        // path) on a thread-scheduler machine with more processors than
        // permits: the run must complete (permits are lent out while
        // parked in recv) with exactly the ungated virtual time.
        let program = |p: &mut Proc<'_>| {
            p.charge(100 * (p.id() as u64 + 1));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            p.send(next, 9, &(p.id() as u64));
            let got: u64 = p.recv(prev, 9);
            p.charge(50);
            got
        };
        let free =
            Machine::new(MachineConfig::mesh(2, 2).unwrap().with_scheduler(SchedulerKind::Threads))
                .run(program);
        let gated = Machine::new(
            MachineConfig::mesh(2, 2)
                .unwrap()
                .with_scheduler(SchedulerKind::Threads)
                .with_workers(1),
        );
        let g = gated.run(program);
        assert_eq!(g.results, free.results);
        assert_eq!(g.report.sim_cycles, free.report.sim_cycles);
        for (pa, pb) in g.report.procs.iter().zip(&free.report.procs) {
            assert_eq!(pa.finished_at, pb.finished_at);
            assert_eq!(pa.stats, pb.stats);
        }
    }

    #[test]
    fn schedulers_agree_on_virtual_time_and_stats() {
        // The same ring program under every scheduler × worker-count
        // combination must produce identical results, sim_cycles, and
        // per-processor stats.
        let program = |p: &mut Proc<'_>| {
            p.charge(100 * (p.id() as u64 + 1));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            p.send(next, 9, &(p.id() as u64));
            let got: u64 = p.recv(prev, 9);
            p.charge(50);
            got
        };
        let base =
            Machine::new(MachineConfig::mesh(2, 2).unwrap().with_scheduler(SchedulerKind::Threads))
                .run(program);
        for workers in [1, 2, 8] {
            let m = Machine::new(
                MachineConfig::mesh(2, 2)
                    .unwrap()
                    .with_scheduler(SchedulerKind::Event)
                    .with_workers(workers),
            );
            assert_eq!(m.scheduler(), SchedulerKind::Event);
            let run = m.run(program);
            assert_eq!(run.results, base.results);
            assert_eq!(run.report.sim_cycles, base.report.sim_cycles);
            for (pa, pb) in run.report.procs.iter().zip(&base.report.procs) {
                assert_eq!(pa.finished_at, pb.finished_at);
                assert_eq!(pa.stats, pb.stats);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pending (src, tag) envelope(s): [(0, 7)]")]
    fn event_scheduler_deadlock_diagnostic_lists_pending_envelopes() {
        // Same diagnostic as the thread scheduler's timeout path, but
        // detected structurally (empty ready heap + live tasks), so no
        // timeout is needed — the huge one here proves it isn't used.
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_scheduler(SchedulerKind::Event)
                .with_timeout(Duration::from_secs(600)),
        );
        let _ = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 7, &9u8);
            } else {
                let _: u8 = p.recv(0, 42);
            }
        });
    }

    #[test]
    fn event_scheduler_detects_deadlock_promptly_without_timeout() {
        let start = std::time::Instant::now();
        let m = Machine::new(
            MachineConfig::mesh(1, 2)
                .unwrap()
                .with_scheduler(SchedulerKind::Event)
                .with_timeout(Duration::from_secs(600)),
        );
        let err = catch_unwind(AssertUnwindSafe(|| {
            m.run(|p| {
                if p.id() == 1 {
                    let _: u8 = p.recv(0, 42); // nobody ever sends
                }
            })
        }))
        .expect_err("deadlock must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into());
        assert!(msg.contains("deadlock suspected"), "unexpected panic: {msg}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "structural detection must not wait out the timeout, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn runtime_error_is_structured_and_does_not_poison() {
        use crate::error::{AbortCause, RT_ERROR_PREFIX};
        // Proc 0 hits a Skil runtime error; proc 1 is blocked on it.
        // Expected: a structured RuntimeError root with a PeerDown
        // cascade — no poison, no hang, and the machine stays usable.
        let start = std::time::Instant::now();
        let m =
            Machine::new(MachineConfig::mesh(1, 2).unwrap().with_timeout(Duration::from_secs(600)));
        let failure = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.charge(100);
                    panic!("{RT_ERROR_PREFIX}integer division by zero");
                } else {
                    let _: u8 = p.recv(0, 1);
                }
            })
            .expect_err("runtime error must fail the run");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "peers must cascade promptly without a fault plan, took {:?}",
            start.elapsed()
        );
        assert_eq!(failure.root().proc, 0);
        assert!(matches!(
            &failure.root().cause,
            AbortCause::RuntimeError { what } if what == "integer division by zero"
        ));
        assert!(failure
            .aborts
            .iter()
            .any(|a| a.proc == 1 && matches!(a.cause, AbortCause::PeerDown { peer: 0 })));
        let s = failure.to_string();
        assert!(s.contains("runtime error"), "{s}");

        // The machine is not poisoned: the very next run on the same
        // warm machine completes with correct results.
        let ok = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 7, &9u8);
                0
            } else {
                p.recv::<u8>(0, 7)
            }
        });
        assert_eq!(ok.results, vec![0, 9]);
    }

    #[test]
    fn warm_machine_reuse_is_bit_identical() {
        // The pool contract: run → run again on the same machine and
        // nothing (results, virtual time, per-proc stats) may differ —
        // every run builds its mailboxes/stats/flags from scratch.
        let program = |p: &mut Proc<'_>| {
            p.charge(100 * (p.id() as u64 + 1));
            let next = (p.id() + 1) % p.nprocs();
            let prev = (p.id() + p.nprocs() - 1) % p.nprocs();
            p.send(next, 9, &(p.id() as u64));
            let got: u64 = p.recv(prev, 9);
            p.charge(50);
            got
        };
        for kind in [SchedulerKind::Event, SchedulerKind::Threads] {
            let m = Machine::new(MachineConfig::mesh(2, 2).unwrap().with_scheduler(kind));
            let a = m.run(program);
            let b = m.run(program);
            assert_eq!(a.results, b.results);
            assert_eq!(a.report.sim_cycles, b.report.sim_cycles);
            for (pa, pb) in a.report.procs.iter().zip(&b.report.procs) {
                assert_eq!(pa.finished_at, pb.finished_at);
                assert_eq!(pa.stats, pb.stats);
            }
        }
    }

    #[test]
    fn warm_reuse_is_counted_and_data_plane_counters_are_deterministic() {
        let program = |p: &mut Proc<'_>| {
            if p.id() == 0 {
                p.send(1, 1, &vec![7u8; 4]); // 12-byte payload: inline
                p.send(1, 2, &vec![9u8; 80]); // 88-byte payload: heap
            } else {
                let _: Vec<u8> = p.recv(0, 1);
                let _: Vec<u8> = p.recv(0, 2);
            }
        };
        for kind in [SchedulerKind::Event, SchedulerKind::Threads] {
            let m = Machine::new(MachineConfig::mesh(1, 2).unwrap().with_scheduler(kind));
            assert_eq!(m.setup_reuse_hits(), 0);
            let a = m.run(program);
            assert_eq!(m.setup_reuse_hits(), 0, "first run is cold");
            let b = m.run(program);
            assert_eq!(m.setup_reuse_hits(), 1, "second run reuses the parked arena");
            let (da, db) = (a.report.data_plane(), b.report.data_plane());
            assert_eq!(da, db, "{kind:?}: counters must not depend on arena reuse");
            assert_eq!(da.inline_msgs, 1, "{kind:?}");
            assert_eq!(da.heap_msgs, 1, "{kind:?}");
            match kind {
                SchedulerKind::Event => {
                    assert_eq!((da.direct_deliveries, da.condvar_deliveries), (2, 0));
                }
                SchedulerKind::Threads => {
                    assert_eq!((da.direct_deliveries, da.condvar_deliveries), (0, 2));
                }
            }
        }
    }

    #[test]
    fn per_run_fault_plan_override_beats_the_configured_plan() {
        use crate::error::AbortCause;
        // Machine configured fault-free; the override carries a crash.
        let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
        let plan = FaultPlan::seeded(9).with_crash(0, 1000);
        let program = |p: &mut Proc<'_>| {
            if p.id() == 0 {
                p.charge(5_000);
                p.send(1, 1, &1u8);
            } else {
                let _: u8 = p.recv(0, 1);
            }
        };
        let failure = m.try_run_faults(Some(&plan), program).expect_err("override crashes");
        assert!(matches!(failure.root().cause, AbortCause::Crashed { cycle: 1000 }));
        // And with no override the machine's own (fault-free) plan runs.
        m.try_run_faults(None, program).expect("fault-free run succeeds");
    }

    #[test]
    fn user_panic_hooks_installed_after_ours_still_fire() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Force our filter hook in first.
        Machine::new(MachineConfig::procs(1).unwrap()).run(|_| ());
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Count only this test's panic: parallel tests may panic
            // while this hook is temporarily installed.
            if info.payload().downcast_ref::<&'static str>() == Some(&"user-level hook probe") {
                FIRED.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let _ = catch_unwind(|| panic!("user-level hook probe"));
        std::panic::set_hook(prev);
        assert_eq!(FIRED.load(Ordering::SeqCst), 1, "a later user hook must not be lost");
    }

    #[test]
    fn zero_cost_model_runs_in_zero_time() {
        let cfg = MachineConfig::mesh(1, 2).unwrap().with_cost(CostModel::zero());
        let m = Machine::new(cfg);
        let run = m.run(|p| {
            if p.id() == 0 {
                p.send(1, 1, &9u8);
            } else {
                let _: u8 = p.recv(0, 1);
            }
        });
        assert_eq!(run.report.sim_cycles, 0);
    }
}
