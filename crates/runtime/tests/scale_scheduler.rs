//! Scheduler differential matrix and large-mesh scale tests.
//!
//! The event scheduler's whole claim is that it changes *host* cost
//! only: every observable of a run — results, `sim_cycles`, per-proc
//! `ProcStats`, fault cascades — must be bit-identical to the thread
//! scheduler's, at any worker count. These tests pin that, plus the
//! scale the thread scheduler cannot reach (a 64×64 mesh = 4,096
//! processors on one host).

use std::time::Duration;

use skil_runtime::{FaultPlan, Machine, MachineConfig, Proc, Run, SchedulerKind};

/// The scheduler × worker-count matrix of the ISSUE: both schedulers,
/// each at its default parallelism and pinned to one host worker.
fn matrix(n: usize, faults: Option<&FaultPlan>) -> Vec<(String, Machine)> {
    let mut out = Vec::new();
    for kind in [SchedulerKind::Event, SchedulerKind::Threads] {
        for workers in [None, Some(1)] {
            let mut cfg = MachineConfig::procs(n).unwrap().with_scheduler(kind);
            if let Some(k) = workers {
                cfg = cfg.with_workers(k);
            }
            if let Some(f) = faults {
                cfg = cfg.with_faults(f.clone());
            }
            out.push((format!("{kind:?}/workers={workers:?}"), Machine::new(cfg)));
        }
    }
    out
}

/// A ring circulation with compute skew and a second skewed round —
/// enough traffic that scheduler bugs (lost wakeups, wrong arrival
/// ordering) would corrupt either the results or the clocks.
fn ring_program(p: &mut Proc<'_>) -> u64 {
    let n = p.nprocs();
    let me = p.id();
    p.charge(100 * (me as u64 + 1));
    let next = (me + 1) % n;
    let prev = (me + n - 1) % n;
    let mut acc = me as u64;
    for round in 0..4u64 {
        p.send(next, 10 + round, &acc);
        acc = acc.wrapping_mul(31) ^ p.recv::<u64>(prev, 10 + round);
        p.charge(50 + 10 * round);
    }
    acc
}

fn assert_identical(label: &str, a: &Run<u64>, b: &Run<u64>) {
    assert_eq!(a.results, b.results, "{label}: results diverged");
    assert_eq!(a.report.sim_cycles, b.report.sim_cycles, "{label}: sim_cycles diverged");
    for (i, (pa, pb)) in a.report.procs.iter().zip(&b.report.procs).enumerate() {
        assert_eq!(pa.finished_at, pb.finished_at, "{label}: proc {i} finished_at");
        assert_eq!(pa.stats, pb.stats, "{label}: proc {i} stats");
    }
}

#[test]
fn differential_matrix_fault_free() {
    let machines = matrix(8, None);
    let base = machines[0].1.run(ring_program);
    for (label, m) in &machines[1..] {
        assert_identical(label, &m.run(ring_program), &base);
    }
}

#[test]
fn differential_matrix_recoverable_fault_plan() {
    // The PR 5 lossy-but-recoverable plan: drops, duplicates, and
    // delays that the reliable-delivery layer fully masks. Every cell
    // of the matrix must agree on clocks AND on fault counters.
    let faults = FaultPlan::seeded(7).with_drop(0.3).with_dup(0.3).with_delay(0.3, 50_000);
    let machines = matrix(8, Some(&faults));
    let base = machines[0].1.run(ring_program);
    let fault_events: u64 = base.report.procs.iter().map(|p| p.stats.fault_events()).sum();
    assert!(fault_events > 0, "the plan must actually inject faults");
    for (label, m) in &machines[1..] {
        assert_identical(label, &m.run(ring_program), &base);
    }
}

#[test]
fn differential_matrix_crash_plan() {
    // The PR 5 crash plan: proc 2 dies mid-run and the failure cascades
    // along wait chains. The structured SimFailure — which processors
    // aborted, in what order, with what causes — must be identical in
    // every matrix cell.
    let faults = FaultPlan::seeded(3).with_crash(2, 500);
    let machines = matrix(8, Some(&faults));
    let failures: Vec<(&String, Vec<(usize, skil_runtime::AbortCause)>)> = machines
        .iter()
        .map(|(label, m)| {
            let failure = m.try_run(ring_program).expect_err("the crash plan must fail the run");
            (label, failure.aborts.iter().map(|a| (a.proc, a.cause.clone())).collect())
        })
        .collect();
    let (_, base) = &failures[0];
    assert!(base.iter().any(|(p, _)| *p == 2), "proc 2 must be in the cascade: {base:?}");
    for (label, aborts) in &failures[1..] {
        assert_eq!(aborts, base, "{label}: fault cascade diverged");
    }
}

#[test]
fn mesh_64x64_completes_on_the_event_scheduler() {
    // 4,096 processors on one host — the scale the ROADMAP names as the
    // thread scheduler's ceiling. A ring circulation crosses every
    // processor, so the golden sim_cycles below witnesses all 4,096
    // clocks advancing identically run over run.
    let m = Machine::new(
        MachineConfig::mesh(64, 64)
            .unwrap()
            .with_scheduler(SchedulerKind::Event)
            .with_timeout(Duration::from_secs(600)),
    );
    assert_eq!(m.scheduler(), SchedulerKind::Event);
    let run = m.run(|p| {
        let n = p.nprocs();
        p.charge(p.id() as u64);
        let next = (p.id() + 1) % n;
        let prev = (p.id() + n - 1) % n;
        p.send(next, 1, &(p.id() as u64));
        let got: u64 = p.recv(prev, 1);
        p.charge(10);
        got
    });
    assert_eq!(run.results.len(), 4096);
    assert_eq!(run.results[0], 4095);
    assert_eq!(run.results[1], 0);
    // Golden: pinned so any scheduler change that perturbs virtual time
    // at scale fails loudly. Update only with a paired DESIGN.md note.
    assert_eq!(run.report.sim_cycles, GOLDEN_64X64_RING);
}

/// Pinned golden for the 64×64 ring smoke test.
const GOLDEN_64X64_RING: u64 = 306_193;

#[test]
fn event_scheduler_scale_is_deterministic() {
    // Two 1,024-proc runs of a skewed all-to-neighbour exchange must
    // agree exactly — at scale, with task migration across workers.
    let runner = || {
        Machine::new(MachineConfig::mesh(32, 32).unwrap().with_scheduler(SchedulerKind::Event))
            .run(ring_program)
    };
    let a = runner();
    let b = runner();
    assert_eq!(a.results, b.results);
    assert_eq!(a.report.sim_cycles, b.report.sim_cycles);
    for (pa, pb) in a.report.procs.iter().zip(&b.report.procs) {
        assert_eq!(pa.finished_at, pb.finished_at);
        assert_eq!(pa.stats, pb.stats);
    }
}
