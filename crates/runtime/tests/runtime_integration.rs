//! Integration tests of the simulator: raw links, topologies in motion,
//! failure injection, and virtual-time invariants.

use skil_runtime::{CostModel, Machine, MachineConfig, Ring, Torus2d, Wire};
use std::time::Duration;

#[test]
fn raw_link_sends_are_cheaper_than_routed_sends() {
    let cfg = MachineConfig::mesh(1, 2).unwrap();
    let c = cfg.cost.clone();
    let m = Machine::new(cfg);
    let payload = vec![0u8; 1000];

    let routed = m.run(|p| {
        if p.id() == 0 {
            p.send(1, 1, &payload);
            0
        } else {
            let _: Vec<u8> = p.recv(0, 1);
            p.now()
        }
    });
    let raw = m.run(|p| {
        if p.id() == 0 {
            p.send_raw(1, 1, 1, &payload);
            0
        } else {
            let _: Vec<u8> = p.recv_raw(0, 1);
            p.now()
        }
    });
    assert!(
        raw.results[1] < routed.results[1],
        "raw {} vs routed {}",
        raw.results[1],
        routed.results[1]
    );
    // both still pay the per-byte link time
    assert!(raw.results[1] > 1000 * c.per_byte);
}

#[test]
fn ring_circulation_visits_everyone() {
    // circulate a token around the ring topology; it must return home
    // after nprocs hops with all ids accumulated
    let m = Machine::new(MachineConfig::mesh(2, 4).unwrap());
    let run = m.run(|p| {
        let ring = Ring::new(p.mesh(), true);
        let me = p.id();
        let (next, nh) = ring.next(me);
        let (prev, _) = ring.prev(me);
        let mut token: Vec<u64> = if me == 0 {
            vec![0]
        } else {
            let mut t: Vec<u64> = p.recv(prev, 7);
            t.push(me as u64);
            t
        };
        if me != 0 {
            p.send_hops(next, nh, 7, &token);
            token
        } else {
            p.send_hops(next, nh, 7, &token);
            token = p.recv(prev, 7);
            token
        }
    });
    let full = &run.results[0];
    assert_eq!(full.len(), 8);
    let mut sorted = full.clone();
    sorted.sort();
    assert_eq!(sorted, (0..8).collect::<Vec<u64>>());
}

#[test]
fn torus_rotation_round_trip() {
    // rotating a block p times around a torus row returns it unchanged
    let m = Machine::new(MachineConfig::square(3).unwrap());
    let run = m.run(|p| {
        let t = Torus2d::new(p.mesh(), true);
        let me = p.id();
        let mut block = vec![me as u32; 4];
        for step in 0..3 {
            let (west, wh) = t.west(me);
            let (east, _) = t.east(me);
            p.send_hops(west, wh, 50 + step, &block);
            block = p.recv(east, 50 + step);
        }
        block[0]
    });
    for (id, &v) in run.results.iter().enumerate() {
        assert_eq!(v, id as u32, "block came home after a full rotation");
    }
}

#[test]
#[should_panic(expected = "decode")]
fn type_mismatch_between_procs_fails_loudly() {
    // failure injection: sender and receiver disagree on the type
    let m = Machine::new(MachineConfig::mesh(1, 2).unwrap().with_timeout(Duration::from_secs(5)));
    let _ = m.run(|p| {
        if p.id() == 0 {
            p.send(1, 1, &3u8); // one byte
        } else {
            let _: u64 = p.recv(0, 1); // needs eight
        }
    });
}

#[test]
#[should_panic(expected = "peer processor panicked")]
fn collective_participant_crash_poisons_peers() {
    // failure injection: one participant dies inside a collective; the
    // others must abort promptly rather than hang
    let m = Machine::new(MachineConfig::procs(8).unwrap().with_timeout(Duration::from_secs(30)));
    let _ = m.run(|p| {
        if p.id() == 3 {
            panic!("injected fault");
        }
        let _: u64 = p.allreduce(9, p.id() as u64, |a, b| a + b, 0);
    });
}

#[test]
fn zero_sized_payloads_work() {
    let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
    let run = m.run(|p| {
        if p.id() == 0 {
            p.send(1, 1, &());
            p.send(1, 2, &Vec::<u64>::new());
            true
        } else {
            let () = p.recv(0, 1);
            let v: Vec<u64> = p.recv(0, 2);
            v.is_empty()
        }
    });
    assert!(run.results[1]);
}

#[test]
fn messages_between_same_pair_keep_order_across_tags() {
    let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
    let run = m.run(|p| {
        if p.id() == 0 {
            for i in 0..10u64 {
                p.send(1, 100 + (i % 2), &i);
            }
            vec![]
        } else {
            // interleave receives across the two tags; FIFO per tag
            let mut even = Vec::new();
            let mut odd = Vec::new();
            for _ in 0..5 {
                even.push(p.recv::<u64>(0, 100));
                odd.push(p.recv::<u64>(0, 101));
            }
            assert_eq!(even, vec![0, 2, 4, 6, 8]);
            assert_eq!(odd, vec![1, 3, 5, 7, 9]);
            even
        }
    });
    assert_eq!(run.results[1], vec![0, 2, 4, 6, 8]);
}

#[test]
fn sim_time_scales_with_work_not_threads() {
    // the same total work on more simulated processors takes less
    // simulated time, regardless of the single host core
    let work_per_proc = |procs: usize| {
        let m =
            Machine::new(MachineConfig::procs(procs).unwrap().with_cost(CostModel::free_comm()));
        m.run(|p| {
            let total = 1_000_000u64;
            p.charge(total / p.nprocs() as u64);
        })
        .report
        .sim_cycles
    };
    let t1 = work_per_proc(1);
    let t4 = work_per_proc(4);
    let t16 = work_per_proc(16);
    assert_eq!(t1, 1_000_000);
    assert_eq!(t4, 250_000);
    assert_eq!(t16, 62_500);
}

#[test]
fn wire_trait_is_usable_downstream() {
    // custom struct flattening (the paper's [2]: move the data, not the
    // pointer)
    #[derive(Debug, Clone, PartialEq)]
    struct Node {
        key: u64,
        tags: Vec<u32>,
    }
    impl Wire for Node {
        fn flatten(&self, out: &mut Vec<u8>) {
            self.key.flatten(out);
            self.tags.flatten(out);
        }
        fn unflatten(
            r: &mut skil_runtime::WireReader<'_>,
        ) -> Result<Self, skil_runtime::WireError> {
            Ok(Node { key: u64::unflatten(r)?, tags: Vec::<u32>::unflatten(r)? })
        }
    }
    let m = Machine::new(MachineConfig::mesh(1, 2).unwrap());
    let run = m.run(|p| {
        let node = Node { key: 7, tags: vec![1, 2, 3] };
        if p.id() == 0 {
            p.send(1, 1, &node);
            node
        } else {
            p.recv(0, 1)
        }
    });
    assert_eq!(run.results[0], run.results[1]);
}
