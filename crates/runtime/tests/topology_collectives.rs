//! Cross-topology collective tests: the four new collectives
//! (allgather, alltoall, reduce_scatter, neighbor exchange) and both
//! allreduce/allgather algorithm variants, run on every topology in the
//! zoo under both schedulers — outputs and per-processor logical
//! traffic must be bit-identical across schedulers, and the algorithm
//! variants must agree on results everywhere.

use proptest::prelude::*;
use skil_runtime::{
    CollectiveAlgo, Machine, MachineConfig, ProcStats, Run, SchedulerKind, Topology,
};

/// Every topology in the zoo that can host `n` processors.
fn zoo(n: usize) -> Vec<Topology> {
    let mut v = vec![Topology::default_for(n).unwrap()];
    if n.is_power_of_two() && n > 1 {
        v.push(Topology::parse(&format!("hypercube:{n}")).unwrap());
    }
    match n {
        16 => {
            v.push(Topology::parse("fattree:2,4").unwrap());
            v.push(Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*64").unwrap());
        }
        8 => {
            v.push(Topology::parse("fattree:3,2").unwrap());
            v.push(Topology::parse("hetero:mesh2d:2x4:slowlinks=col1*16").unwrap());
        }
        4 => v.push(Topology::parse("fattree:1,4").unwrap()),
        _ => {}
    }
    v
}

fn machine(topo: Topology, sched: SchedulerKind) -> Machine {
    Machine::new(MachineConfig::on_topology(topo).unwrap().with_scheduler(sched))
}

/// Run `program` on `topo` under both schedulers; assert the outputs,
/// the virtual run time, and every processor's logical traffic counters
/// are identical, then hand back the event-scheduler run.
fn differential<T, F>(topo: Topology, program: F) -> Run<T>
where
    T: std::fmt::Debug + PartialEq + Send,
    F: Fn(&mut skil_runtime::Proc<'_>) -> T + Sync,
{
    let event = machine(topo, SchedulerKind::Event).run(&program);
    let threads = machine(topo, SchedulerKind::Threads).run(&program);
    assert_eq!(event.results, threads.results, "outputs diverge on {topo}");
    assert_eq!(event.report.sim_cycles, threads.report.sim_cycles, "sim_cycles diverge on {topo}");
    let logical =
        |r: &Run<T>| -> Vec<ProcStats> { r.report.procs.iter().map(|p| p.stats).collect() };
    assert_eq!(logical(&event), logical(&threads), "per-proc stats diverge on {topo}");
    event
}

#[test]
fn allgather_is_scheduler_identical_on_every_topology() {
    for n in [4, 8, 16] {
        for topo in zoo(n) {
            for algo in [CollectiveAlgo::Ring, CollectiveAlgo::RecDouble, CollectiveAlgo::Auto] {
                let run =
                    differential(topo, move |p| p.allgather_with(algo, 7, (p.id() as u64) * 3 + 1));
                let expect: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
                assert!(run.results.iter().all(|v| *v == expect), "{topo} {algo:?}");
            }
        }
    }
}

#[test]
fn alltoall_is_scheduler_identical_on_every_topology() {
    for n in [4, 8, 16] {
        for topo in zoo(n) {
            let run = differential(topo, |p| {
                let n = p.nprocs();
                let parts: Vec<u64> = (0..n).map(|d| ((p.id() as u64) << 32) | d as u64).collect();
                p.alltoall(9, parts)
            });
            for (id, got) in run.results.iter().enumerate() {
                let expect: Vec<u64> = (0..n).map(|src| ((src as u64) << 32) | id as u64).collect();
                assert_eq!(*got, expect, "{topo} id={id}");
            }
        }
    }
}

#[test]
fn reduce_scatter_is_scheduler_identical_on_every_topology() {
    for n in [4, 8, 16] {
        for topo in zoo(n) {
            let run = differential(topo, |p| {
                let n = p.nprocs();
                let parts: Vec<u64> = (0..n).map(|j| (p.id() * n + j) as u64).collect();
                p.reduce_scatter(11, parts, |a, b| a + b, 2)
            });
            // Block j reduces sum_id(id*n + j) = n*sum(id) + n*j.
            let base = (n * (n - 1) / 2) as u64 * n as u64;
            for (id, &got) in run.results.iter().enumerate() {
                assert_eq!(got, base + (n * id) as u64, "{topo} id={id}");
            }
        }
    }
}

#[test]
fn neighbor_exchange_is_scheduler_identical_on_every_topology() {
    for n in [4, 8, 16] {
        for topo in zoo(n) {
            let run = differential(topo, |p| p.neighbor_exchange(13, p.id() as u64 + 100));
            for (id, got) in run.results.iter().enumerate() {
                let expect: Vec<(usize, u64)> =
                    topo.neighbors(id).into_iter().map(|nb| (nb, nb as u64 + 100)).collect();
                assert_eq!(*got, expect, "{topo} id={id}");
            }
        }
    }
}

#[test]
fn allreduce_variants_are_scheduler_identical_on_every_topology() {
    for n in [4, 8, 16] {
        for topo in zoo(n) {
            for algo in [CollectiveAlgo::Tree, CollectiveAlgo::Ring, CollectiveAlgo::RecDouble] {
                let run = differential(topo, move |p| {
                    p.allreduce_with(algo, 15, p.id() as u64 + 1, |a, b| a + b, 3)
                });
                let expect = (n as u64 * (n as u64 + 1)) / 2;
                assert!(run.results.iter().all(|&v| v == expect), "{topo} {algo:?}");
            }
        }
    }
}

/// Hop-metric pins for the corner routes of the non-mesh topologies.
#[test]
fn hop_metric_corner_routes() {
    let cube = Topology::parse("hypercube:32").unwrap();
    assert_eq!(cube.hops(0, 31), 5, "antipodal corners of a 5-cube");
    assert_eq!(cube.hops(0, 1), 1);
    assert_eq!(cube.hops(10, 21), 5, "01010 vs 10101 differ everywhere");

    let ft = Topology::parse("fattree:2,4").unwrap();
    assert_eq!(ft.hops(0, 3), 2, "same leaf switch");
    assert_eq!(ft.hops(0, 15), 4, "opposite pods climb to the root");
    assert_eq!(ft.hops(12, 15), 2);

    let deep = Topology::parse("fattree:3,2").unwrap();
    assert_eq!(deep.hops(0, 1), 2);
    assert_eq!(deep.hops(0, 7), 6, "full climb in a 3-level tree");
    assert_eq!(deep.hops(2, 3), 2);
    assert_eq!(deep.hops(1, 2), 4, "one level up");

    let het = Topology::parse("hetero:mesh2d:4x4:slowlinks=col2*64").unwrap();
    assert_eq!(het.hops(0, 1), 1, "fast side untouched");
    assert_eq!(het.hops(1, 2), 1 + 63, "crossing the cut pays the factor");
    assert_eq!(het.hops(0, 15), 6 + 63, "Manhattan plus one crossing surcharge");
}

/// The total logical message count of each allreduce algorithm is a
/// pure function of the processor count — never of the topology, the
/// payload, or host scheduling — and ring and recursive doubling agree
/// with the tree on the reduced value everywhere.
fn check_ring_vs_rd(n: usize, payloads: Vec<u64>) {
    let expect = pay_sum(&payloads);
    let mut totals_per_topo: Vec<(CollectiveAlgo, Vec<(u64, u64)>)> = Vec::new();
    for topo in zoo(n) {
        for algo in [CollectiveAlgo::Ring, CollectiveAlgo::RecDouble] {
            let pay = payloads.clone();
            let run = machine(topo, SchedulerKind::Event)
                .run(move |p| p.allreduce_with(algo, 5, pay[p.id()], |a, b| a.wrapping_add(b), 1));
            assert!(
                run.results.iter().all(|&v| v == expect),
                "n={n} {topo} {algo:?}: wrong reduction"
            );
            let totals = run.report.procs.iter().map(|p| (p.stats.sends, p.stats.recvs)).collect();
            totals_per_topo.push((algo, totals));
        }
    }
    // Group by algorithm: every topology must report the same per-proc
    // logical sends/recvs for a given (algo, n).
    for algo in [CollectiveAlgo::Ring, CollectiveAlgo::RecDouble] {
        let all: Vec<&Vec<(u64, u64)>> =
            totals_per_topo.iter().filter(|(a, _)| *a == algo).map(|(_, t)| t).collect();
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "n={n} {algo:?}: logical traffic depends on topology");
        }
    }
}

fn pay_sum(pay: &[u64]) -> u64 {
    pay.iter().fold(0u64, |a, &b| a.wrapping_add(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn allreduce_ring_vs_rd_identical_everywhere(
        n in 1usize..17,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random payloads from the seed (splitmix).
        let mut s = seed;
        let payloads: Vec<u64> = (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            })
            .collect();
        check_ring_vs_rd(n, payloads);
    }
}
