//! Serving-layer load generator: replays thousands of mixed requests
//! against one in-process [`skil_serve::Server`] and reports latency,
//! throughput, and cache effectiveness.
//!
//! The mix deliberately includes every failure mode the daemon must
//! absorb — Skil runtime errors (division by zero) under all three
//! engines and crash fault plans — interleaved with real skeleton
//! programs (`shortest_paths.skil`, `gauss.skil`), whose golden
//! `sim_cycles` are asserted on **every** run: warm pooled machines
//! must be bit-identical with cold ones, request after request. The
//! mesh sweep (1x3 and 4x4 alongside the default 2x2) keeps several
//! pool shapes warm at once, and the native-engine workloads must ride
//! the same compiled-program cache as the VM's (the >= 90% hit-rate
//! gate counts them).
//!
//! Emits `BENCH_serving.json` (schema `skil-bench/serving/v1`, gated
//! by `scripts/bench_gate.py`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p skil-serve --bin bench_serving -- \
//!     [--out BENCH_serving.json] [--requests N] [--threads K] [--quick]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use skil_lang::{Engine, OptLevel};
use skil_runtime::FaultPlan;
use skil_serve::{ErrorKind, Request, Response, Server};

const SHORTEST_PATHS: &str = include_str!("../../../../examples/skil/shortest_paths.skil");
const GAUSS: &str = include_str!("../../../../examples/skil/gauss.skil");

/// Golden virtual run times on the default 2x2 mesh (pinned repo-wide;
/// see ROADMAP.md and the CI golden greps).
const GOLDEN_SHORTEST_PATHS: u64 = 2_397_316;
const GOLDEN_GAUSS: u64 = 11_906_936;

/// A tiny fan-out-free program: the high-volume filler of the mix.
const HELLO: &str = "void main() { if (procId == 0) { print(procId + 7); } }";

/// A communicating skeleton program (distributed fold, result 120).
const FOLD: &str = "int initf(Index ix) { return ix[0] + ix[1]; } \
                    int conv(int v, Index ix) { return v; } \
                    void main() { \
                      array<int> a = array_create(1, {16,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT); \
                      int total = array_fold(conv, (+), a); \
                      if (procId == 0) { print(total); } \
                    }";

/// Divides by a value the optimizer cannot fold away: every processor
/// hits a genuine runtime error.
const DIV_ZERO: &str = "void main() { int z = procId - procId; print(100 / z); }";

/// What a workload's responses must look like.
#[derive(Clone, Copy, PartialEq)]
enum Expect {
    /// Clean run; optionally with pinned golden `sim_cycles`.
    Ok(Option<u64>),
    /// A structured runtime-error response whose message contains the
    /// given substring.
    RuntimeError(&'static str),
}

struct Workload {
    name: &'static str,
    program: &'static str,
    engine: Engine,
    mesh: (usize, usize),
    faults: Option<&'static str>,
    expect: Expect,
    /// Requests at the default 2,000-request volume.
    weight: usize,
}

fn mix() -> Vec<Workload> {
    vec![
        Workload {
            name: "hello_vm",
            program: HELLO,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(None),
            weight: 800,
        },
        Workload {
            name: "fold_vm",
            program: FOLD,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(None),
            weight: 300,
        },
        Workload {
            name: "fold_ast",
            program: FOLD,
            engine: Engine::Ast,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(None),
            weight: 150,
        },
        // the native engine in the mix: compiled once (machine code is
        // cached inside the Compiled entry), then served warm — the
        // daemon-level cache-hit gate below covers these requests too
        Workload {
            name: "fold_native",
            program: FOLD,
            engine: Engine::Native,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(None),
            weight: 150,
        },
        Workload {
            name: "shortest_paths_native",
            program: SHORTEST_PATHS,
            engine: Engine::Native,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(Some(GOLDEN_SHORTEST_PATHS)),
            weight: 12,
        },
        // mesh sweep: the pool must keep distinct shapes warm side by
        // side (per-shape counters are asserted after the replay)
        Workload {
            name: "fold_vm_1x3",
            program: FOLD,
            engine: Engine::Vm,
            mesh: (1, 3),
            faults: None,
            expect: Expect::Ok(None),
            weight: 120,
        },
        Workload {
            name: "fold_native_4x4",
            program: FOLD,
            engine: Engine::Native,
            mesh: (4, 4),
            faults: None,
            expect: Expect::Ok(None),
            weight: 100,
        },
        Workload {
            name: "shortest_paths_vm",
            program: SHORTEST_PATHS,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(Some(GOLDEN_SHORTEST_PATHS)),
            weight: 24,
        },
        Workload {
            name: "gauss_vm",
            program: GAUSS,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: None,
            expect: Expect::Ok(Some(GOLDEN_GAUSS)),
            weight: 8,
        },
        Workload {
            name: "div_zero_vm",
            program: DIV_ZERO,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: None,
            expect: Expect::RuntimeError("division by zero"),
            weight: 118,
        },
        Workload {
            name: "div_zero_native",
            program: DIV_ZERO,
            engine: Engine::Native,
            mesh: (2, 2),
            faults: None,
            expect: Expect::RuntimeError("division by zero"),
            weight: 50,
        },
        Workload {
            name: "div_zero_ast",
            program: DIV_ZERO,
            engine: Engine::Ast,
            mesh: (2, 2),
            faults: None,
            expect: Expect::RuntimeError("division by zero"),
            weight: 68,
        },
        Workload {
            name: "crash_fault_vm",
            program: FOLD,
            engine: Engine::Vm,
            mesh: (2, 2),
            faults: Some("seed=7,crash=3@50"),
            expect: Expect::RuntimeError("crashed by fault plan"),
            weight: 100,
        },
    ]
}

/// Deterministic in-place shuffle (LCG), so the interleave of the mix
/// is identical run to run.
fn shuffle(indices: &mut [usize]) {
    let mut state: u64 = 0x5DEECE66D;
    for i in (1..indices.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        indices.swap(i, j);
    }
}

fn percentile(sorted_ns: &[u64], p: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = (sorted_ns.len() * p / 100).min(sorted_ns.len() - 1);
    sorted_ns[idx]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_serving.json".to_string();
    let mut threads = 4usize;
    let mut total_override: Option<usize> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads N");
            }
            "--requests" => {
                i += 1;
                total_override = Some(args[i].parse().expect("--requests N"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "usage: bench_serving [--out FILE] [--requests N] [--threads K] [--quick] \
                     (got {other})"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let workloads = mix();
    let default_total: usize = workloads.iter().map(|w| w.weight).sum();
    let total = total_override.unwrap_or(if quick { default_total / 10 } else { default_total });

    // Scale each workload's count to the requested volume, keeping at
    // least one request per workload so the mix always exercises every
    // failure mode.
    let counts: Vec<usize> =
        workloads.iter().map(|w| (w.weight * total / default_total).max(1)).collect();
    let mut schedule: Vec<usize> = Vec::new();
    for (idx, &n) in counts.iter().enumerate() {
        schedule.extend(std::iter::repeat_n(idx, n));
    }
    shuffle(&mut schedule);

    let server = Arc::new(Server::new());
    let schedule = Arc::new(schedule);
    let next = Arc::new(AtomicUsize::new(0));
    // Per-workload latency samples, merged after the replay.
    let lats: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new(workloads.iter().map(|_| Mutex::new(Vec::new())).collect());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let warm_golden = Arc::new(AtomicUsize::new(0));

    eprintln!(
        "bench_serving: replaying {} requests over {} workloads on {} threads",
        schedule.len(),
        workloads.len(),
        threads
    );
    let wall_start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let server = Arc::clone(&server);
            let schedule = Arc::clone(&schedule);
            let next = Arc::clone(&next);
            let lats = Arc::clone(&lats);
            let failures = Arc::clone(&failures);
            let warm_golden = Arc::clone(&warm_golden);
            let workloads = mix();
            std::thread::spawn(move || loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(&widx) = schedule.get(slot) else { return };
                let w = &workloads[widx];
                let req = Request {
                    id: None,
                    program: w.program.to_string(),
                    mesh: w.mesh,
                    topology: None,
                    collective_algo: None,
                    engine: w.engine,
                    opt_level: OptLevel::default(),
                    faults: w.faults.map(|spec| FaultPlan::parse(spec).unwrap()),
                };
                let start = Instant::now();
                let resp = server.handle(req);
                let elapsed = start.elapsed().as_nanos() as u64;
                lats[widx].lock().unwrap().push(elapsed);
                let problem = match (&w.expect, &resp) {
                    (Expect::Ok(golden), Response::Ok { run, warm_machine, .. }) => match golden {
                        Some(cycles) if run.report.sim_cycles != *cycles => Some(format!(
                            "{}: sim_cycles {} != golden {cycles} (warm={warm_machine})",
                            w.name, run.report.sim_cycles
                        )),
                        Some(_) => {
                            if *warm_machine {
                                warm_golden.fetch_add(1, Ordering::Relaxed);
                            }
                            None
                        }
                        None => None,
                    },
                    (Expect::RuntimeError(needle), Response::Err { kind, message, .. }) => {
                        if *kind == ErrorKind::Runtime && message.contains(needle) {
                            None
                        } else {
                            Some(format!(
                                "{}: expected runtime error containing {needle:?}, \
                                 got kind {kind:?}: {message}",
                                w.name
                            ))
                        }
                    }
                    (_, resp) => {
                        Some(format!("{}: unexpected response: {}", w.name, resp.to_json_line()))
                    }
                };
                if let Some(p) = problem {
                    failures.lock().unwrap().push(p);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("replay worker");
    }
    let wall = wall_start.elapsed();

    let failures = failures.lock().unwrap();
    if !failures.is_empty() {
        eprintln!("bench_serving: {} response check failure(s):", failures.len());
        for f in failures.iter().take(10) {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    let stats = server.stats();
    let mut all: Vec<u64> = Vec::new();
    let mut workload_lines = Vec::new();
    for (widx, w) in workloads.iter().enumerate() {
        let mut ns = lats[widx].lock().unwrap().clone();
        ns.sort_unstable();
        all.extend_from_slice(&ns);
        let mean = ns.iter().sum::<u64>() / ns.len() as u64;
        let mut line = String::new();
        write!(
            line,
            "    {{\n      \"name\": \"{}\",\n      \"requests\": {},\n      \
             \"lat_mean_ns\": {},\n      \"lat_p50_ns\": {},\n      \"lat_p99_ns\": {}\n    }}",
            w.name,
            ns.len(),
            mean,
            percentile(&ns, 50),
            percentile(&ns, 99),
        )
        .unwrap();
        workload_lines.push(line);
        eprintln!(
            "bench_serving: {:>20}: {:>5} reqs, mean {:>9} ns, p99 {:>9} ns",
            w.name,
            ns.len(),
            mean,
            percentile(&ns, 99)
        );
    }
    all.sort_unstable();
    let runs_per_sec = all.len() as f64 / wall.as_secs_f64();
    let hit_rate = stats.cache_hit_rate();

    eprintln!(
        "bench_serving: {} requests in {:.2}s ({:.1} runs/sec), cache hit rate {:.1}%, \
         {} warm-machine golden runs, {} machine(s) discarded",
        all.len(),
        wall.as_secs_f64(),
        runs_per_sec,
        100.0 * hit_rate,
        warm_golden.load(Ordering::Relaxed),
        stats.machines_discarded,
    );
    if stats.machines_discarded > 0 {
        eprintln!("bench_serving: FAIL: machines were discarded (engine panic under load)");
        return ExitCode::FAILURE;
    }
    if hit_rate < 0.90 {
        eprintln!("bench_serving: FAIL: cache hit rate {:.3} below 0.90", hit_rate);
        return ExitCode::FAILURE;
    }
    // Every mesh shape in the mix must show up in the per-shape pool
    // counters, and each shape's machines must have been reused.
    for mesh in [(2, 2), (1, 3), (4, 4)] {
        let Some(p) = stats.pool.iter().find(|p| p.mesh == mesh) else {
            eprintln!("bench_serving: FAIL: no pool counters for {}x{}", mesh.0, mesh.1);
            return ExitCode::FAILURE;
        };
        eprintln!(
            "bench_serving: pool {}x{}: {} warm / {} cold checkout(s), {} idle",
            mesh.0, mesh.1, p.warm, p.cold, p.idle
        );
        if p.warm == 0 {
            eprintln!("bench_serving: FAIL: {}x{} machines were never reused", mesh.0, mesh.1);
            return ExitCode::FAILURE;
        }
    }

    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"schema\": \"skil-bench/serving/v1\",").unwrap();
    writeln!(out, "  \"threads\": {threads},").unwrap();
    writeln!(out, "  \"requests\": {},", all.len()).unwrap();
    writeln!(out, "  \"ok\": {},", stats.ok).unwrap();
    writeln!(out, "  \"structured_errors\": {},", stats.errors).unwrap();
    writeln!(out, "  \"machines_discarded\": {},", stats.machines_discarded).unwrap();
    writeln!(out, "  \"cache_hit_rate\": {:.4},", hit_rate).unwrap();
    writeln!(out, "  \"warm_machine_golden_runs\": {},", warm_golden.load(Ordering::Relaxed))
        .unwrap();
    writeln!(out, "  \"golden_shortest_paths_cycles\": {GOLDEN_SHORTEST_PATHS},").unwrap();
    writeln!(out, "  \"golden_gauss_cycles\": {GOLDEN_GAUSS},").unwrap();
    writeln!(out, "  \"pool\": [").unwrap();
    let pool_lines: Vec<String> = stats
        .pool
        .iter()
        .map(|p| {
            format!(
                "    {{\"mesh\": \"{}x{}\", \"warm\": {}, \"cold\": {}, \"idle\": {}}}",
                p.mesh.0, p.mesh.1, p.warm, p.cold, p.idle
            )
        })
        .collect();
    writeln!(out, "{}", pool_lines.join(",\n")).unwrap();
    writeln!(out, "  ],").unwrap();
    writeln!(out, "  \"p50_ns\": {},", percentile(&all, 50)).unwrap();
    writeln!(out, "  \"p99_ns\": {},", percentile(&all, 99)).unwrap();
    writeln!(out, "  \"runs_per_sec\": {:.2},", runs_per_sec).unwrap();
    writeln!(out, "  \"workloads\": [").unwrap();
    writeln!(out, "{}", workload_lines.join(",\n")).unwrap();
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    if let Err(e) = std::fs::write(&out_path, &out) {
        eprintln!("bench_serving: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_serving: wrote {out_path}");
    ExitCode::SUCCESS
}
