//! `skild` — the Skil serving daemon.
//!
//! Reads JSONL requests from stdin, runs them on a shared
//! [`skil_serve::Server`] (compiled-program cache + warm-machine pool),
//! and writes one JSON response line per request to stdout. Responses
//! may be emitted out of order under `--threads > 1`; clients correlate
//! by the echoed `"id"` field.
//!
//! ```text
//! echo '{"id":"a","program":"void main() { if (procId == 0) { print(42); } }"}' \
//!     | skild
//! {"ok":true,"id":"a","results":[["42"],[],[],[]],...}
//! ```
//!
//! A request is a JSON object:
//!
//! ```text
//! {"id":"r1",                  optional, echoed back
//!  "program":"<skil source>",  required
//!  "mesh":"2x2",               optional, default 2x2
//!  "engine":"vm",              optional, ast|vm|native, default vm
//!  "opt_level":2,              optional, 0|1|2, default 2
//!  "faults":"seed=7,crash=3@1000000"}   optional fault plan
//! ```
//!
//! `{"cmd":"stats"}` returns the serving counters. Every failure mode —
//! bad JSON, compile error, Skil runtime error, injected crash — is a
//! structured `{"ok":false,"error":{...}}` response; the daemon never
//! exits on a request, only on stdin EOF (exit 0) or an I/O error
//! (exit 1).

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use skil_serve::Server;

fn usage() -> ExitCode {
    eprintln!(
        "usage: skild [--threads N]\n\
         \n\
         Reads one JSON request per stdin line, writes one JSON response\n\
         per line to stdout (unordered under --threads > 1; correlate by\n\
         \"id\"). Serving counters go to stderr at EOF."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => threads = n,
                    _ => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }

    let server = Arc::new(Server::new());
    let (tx, rx) = mpsc::channel::<String>();
    let rx = Arc::new(Mutex::new(rx));
    let stdout = Arc::new(Mutex::new(std::io::stdout()));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let server = Arc::clone(&server);
            let rx = Arc::clone(&rx);
            let stdout = Arc::clone(&stdout);
            std::thread::spawn(move || -> std::io::Result<()> {
                loop {
                    // Hold the receiver lock only while popping.
                    let line = match rx.lock().unwrap().recv() {
                        Ok(line) => line,
                        Err(_) => return Ok(()), // channel closed: EOF
                    };
                    let response = server.handle_line(&line);
                    let mut out = stdout.lock().unwrap();
                    out.write_all(response.as_bytes())?;
                    out.write_all(b"\n")?;
                    out.flush()?;
                }
            })
        })
        .collect();

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("skild: stdin error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if tx.send(line).is_err() {
            eprintln!("skild: all workers exited");
            return ExitCode::FAILURE;
        }
    }
    drop(tx); // EOF: let the workers drain and exit

    let mut io_failed = false;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("skild: stdout error: {e}");
                io_failed = true;
            }
            Err(_) => {
                // A worker panicked — Server::handle_line is supposed to
                // make this impossible; surface it loudly.
                eprintln!("skild: worker panicked");
                io_failed = true;
            }
        }
    }

    let s = server.stats();
    eprintln!(
        "skild: served {} request(s): {} ok, {} error(s); compile cache {} hit / {} miss \
         ({:.1}% hit rate); machines {} warm / {} cold / {} discarded",
        s.requests,
        s.ok,
        s.errors,
        s.compile_hits,
        s.compile_misses,
        100.0 * s.cache_hit_rate(),
        s.machines_warm,
        s.machines_cold,
        s.machines_discarded,
    );
    for p in &s.pool {
        eprintln!(
            "skild:   pool {} (algo {}): {} warm / {} cold checkout(s), {} idle",
            p.topology, p.algo, p.warm, p.cold, p.idle
        );
    }
    if io_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
