//! A small, dependency-free JSON parser and emitter.
//!
//! The serving protocol is JSON-lines, and the workspace builds fully
//! offline (no serde), so `skild` hand-rolls the little JSON it needs —
//! the same stance the exporters in `skil-runtime` take for output-only
//! JSON. The parser here accepts any standard JSON value (objects,
//! arrays, strings with escapes, numbers, booleans, null) and rejects
//! trailing garbage, which is all a request line may contain.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the protocol only uses small
    /// integers, all exactly representable).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps emission order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// A member of this object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse one JSON value from `src`, requiring it to span the whole
/// input (modulo whitespace). Errors carry a byte offset and message.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(ch);
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through).
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escape `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Build a `Json::Obj` from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_request_shape() {
        let line = r#"{"id":"r1","program":"void main() { print(1/0); }","mesh":"2x2","engine":"vm","opt_level":2}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(v.get("opt_level").and_then(Json::as_u64), Some(2));
        let emitted = v.to_string();
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn escapes_survive_a_roundtrip() {
        let original = Json::Str("line1\nline2\t\"quoted\" \\ slash \u{0001}".to_string());
        let emitted = original.to_string();
        assert_eq!(parse(&emitted).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A😀""#).unwrap(), Json::Str("A\u{1F600}".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "1 2", "nul", "{\"a\":1}x"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_parse_including_negatives_and_exponents() {
        assert_eq!(parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(parse("2.5e2").unwrap(), Json::Num(250.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
