//! # skil-serve
//!
//! The **Skil serving layer**: a persistent in-process server that
//! compiles Skil programs once and runs them many times on a pool of
//! warm simulated machines (DESIGN.md §14).
//!
//! Three pieces:
//!
//! - a **compiled-program cache** keyed by
//!   `(source hash, cost model, opt level, engine)` — re-submitting the
//!   same program skips the whole front end;
//! - a **warm-[`Machine`] pool** keyed by mesh shape — worker threads
//!   and coroutine stacks are reused across requests, and per-request
//!   fault plans ride on [`Compiled::try_run_faults`] so machines with
//!   different fault plans share one pool entry;
//! - a **structured request/response protocol** (JSON lines, see
//!   [`Server::handle_line`]) in which *every* failure — parse error,
//!   type error, Skil runtime error, injected crash — is a JSON error
//!   response, never a dead daemon.
//!
//! The safety story for reuse: `Machine::try_run*` builds fresh mailbox
//! and stats state per run, structured failures
//! ([`skil_runtime::SimFailure`]) leave the machine clean, and a
//! genuine engine panic is caught by the server, reported as an
//! `internal` error, and the affected machine is *discarded* instead of
//! returned to the pool.
//!
//! ```
//! use skil_serve::Server;
//!
//! let server = Server::new();
//! let resp = server.handle_line(
//!     r#"{"id":"a","program":"void main() { if (procId == 0) { print(40 + 2); } }"}"#,
//! );
//! assert!(resp.contains("\"ok\":true"));
//! assert!(resp.contains("\"42\""));
//! // Same source again: served from the compiled-program cache.
//! server.handle_line(r#"{"program":"void main() { if (procId == 0) { print(40 + 2); } }"}"#);
//! assert_eq!(server.stats().compile_hits, 1);
//! ```

#![warn(missing_docs)]

pub mod json;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use json::{obj, Json};
use skil_lang::{compile_opt, Compiled, Engine, OptLevel};
use skil_runtime::{CollectiveAlgo, FaultPlan, Machine, MachineConfig, Mesh, Run, Topology};

/// Compiled-program cache key. The cost model is part of the key per
/// the serving contract — today every pooled machine uses the T800
/// model, but a cached program must never outlive the model its cycles
/// were validated against. The engine is included for the same
/// forward-compatibility reason (every engine currently shares one
/// bytecode image; the native engine's compiled module rides inside
/// [`Compiled`] keyed by content hash, so cached programs reuse the
/// `dlopen`ed artifact across requests).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProgramKey {
    src_hash: u64,
    cost_model: &'static str,
    opt_level: OptLevel,
    engine: Engine,
}

/// FNV-1a over the program source: stable, dependency-free, and cheap
/// relative to parsing.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The cost model every pooled machine runs — [`MachineConfig::mesh`]'s
/// default.
const COST_MODEL: &str = "t800";

/// A parsed, validated run request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Opaque client id, echoed in the response (optional).
    pub id: Option<String>,
    /// Skil source text.
    pub program: String,
    /// Mesh shape.
    pub mesh: (usize, usize),
    /// Physical topology (`None` = 2-D mesh of the `mesh` shape). When
    /// set, it subsumes `mesh`: the process grid is the topology's.
    pub topology: Option<Topology>,
    /// Collective-algorithm override (`None` = per-collective default).
    pub collective_algo: Option<CollectiveAlgo>,
    /// Execution engine.
    pub engine: Engine,
    /// Bytecode optimizer level.
    pub opt_level: OptLevel,
    /// Per-request fault plan (`None` = fault-free).
    pub faults: Option<FaultPlan>,
}

impl Request {
    /// A fault-free default-engine request for `program` on a 2x2 mesh.
    pub fn program(src: &str) -> Request {
        Request {
            id: None,
            program: src.to_string(),
            mesh: (2, 2),
            topology: None,
            collective_algo: None,
            engine: Engine::Vm,
            opt_level: OptLevel::default(),
            faults: None,
        }
    }

    /// The topology this request's machine runs on: the explicit
    /// `topology` when present, otherwise a 2-D mesh of `mesh`.
    pub fn effective_topology(&self) -> Topology {
        self.topology.unwrap_or(Topology::Mesh2d(Mesh { rows: self.mesh.0, cols: self.mesh.1 }))
    }

    /// Parse the JSON-object form of a request. Unknown fields are
    /// rejected so client typos fail loudly instead of silently running
    /// with defaults.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let Json::Obj(map) = v else {
            return Err("request must be a JSON object".to_string());
        };
        for key in map.keys() {
            if !matches!(
                key.as_str(),
                "id" | "program"
                    | "mesh"
                    | "topology"
                    | "collective_algo"
                    | "engine"
                    | "opt_level"
                    | "faults"
            ) {
                return Err(format!("unknown request field \"{key}\""));
            }
        }
        let id = match map.get("id") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("\"id\" must be a string".to_string()),
        };
        let program = match map.get("program") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err("\"program\" must be a string".to_string()),
            None => return Err("missing \"program\"".to_string()),
        };
        let mesh = match map.get("mesh") {
            None => (2, 2),
            Some(Json::Str(spec)) => parse_mesh(spec)?,
            Some(_) => return Err("\"mesh\" must be a string like \"2x2\"".to_string()),
        };
        let topology = match map.get("topology") {
            None => None,
            Some(Json::Str(spec)) => {
                Some(Topology::parse(spec).map_err(|e| format!("bad \"topology\" spec: {e}"))?)
            }
            Some(_) => {
                return Err("\"topology\" must be a spec string like \"hypercube:16\"".to_string())
            }
        };
        let collective_algo = match map.get("collective_algo") {
            None => None,
            Some(Json::Str(s)) => Some(
                CollectiveAlgo::parse(s)
                    .ok_or(format!("bad \"collective_algo\" \"{s}\" (tree|ring|rd|auto)"))?,
            ),
            Some(_) => {
                return Err("\"collective_algo\" must be tree, ring, rd, or auto".to_string())
            }
        };
        let engine = match map.get("engine") {
            None => Engine::Vm,
            Some(Json::Str(s)) => {
                Engine::from_arg(s).ok_or(format!("bad \"engine\" \"{s}\" (ast|vm|native)"))?
            }
            Some(_) => return Err("\"engine\" must be \"ast\", \"vm\", or \"native\"".to_string()),
        };
        let opt_level = match map.get("opt_level") {
            None => OptLevel::default(),
            Some(v) => {
                let n = v.as_u64().ok_or("\"opt_level\" must be 0, 1, or 2")?;
                OptLevel::from_arg(&n.to_string()).ok_or("\"opt_level\" must be 0, 1, or 2")?
            }
        };
        let faults = match map.get("faults") {
            None => None,
            Some(Json::Str(spec)) => {
                Some(FaultPlan::parse(spec).map_err(|e| format!("bad \"faults\" spec: {e}"))?)
            }
            Some(_) => return Err("\"faults\" must be a fault-spec string".to_string()),
        };
        Ok(Request { id, program, mesh, topology, collective_algo, engine, opt_level, faults })
    }
}

/// Parse `"RxC"` into a mesh shape.
fn parse_mesh(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("bad mesh \"{spec}\" (want ROWSxCOLS, e.g. \"2x2\")");
    let (r, c) = spec.split_once('x').ok_or_else(err)?;
    let r: usize = r.parse().map_err(|_| err())?;
    let c: usize = c.parse().map_err(|_| err())?;
    if r == 0 || c == 0 {
        return Err(err());
    }
    Ok((r, c))
}

/// Why a request failed. The `kind` tags let clients (and the CI smoke
/// test) distinguish their own bad input from program bugs from server
/// bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or invalid request fields.
    BadRequest,
    /// The program did not compile (parse/type/instantiation error).
    Compile,
    /// The simulation aborted with a structured failure: a Skil runtime
    /// error (division by zero, out-of-bounds index), an injected
    /// crash, or the resulting `PeerDown` cascade.
    Runtime,
    /// The engine itself panicked — a server bug. The machine involved
    /// is discarded, the daemon keeps serving.
    Internal,
}

impl ErrorKind {
    fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Compile => "compile",
            ErrorKind::Runtime => "runtime",
            ErrorKind::Internal => "internal",
        }
    }
}

/// The outcome of one request.
#[derive(Debug)]
pub enum Response {
    /// The program ran to completion.
    Ok {
        /// Echoed request id.
        id: Option<String>,
        /// The completed run (per-processor output lines + report).
        run: Run<Vec<String>>,
        /// Whether the compiled program came from the cache.
        cache_hit: bool,
        /// Whether the machine came warm from the pool.
        warm_machine: bool,
    },
    /// The request failed; the daemon is still healthy.
    Err {
        /// Echoed request id.
        id: Option<String>,
        /// Which layer rejected it.
        kind: ErrorKind,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Reply to a `{"cmd":"stats"}` control request.
    Stats(StatsSnapshot),
}

impl Response {
    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            Response::Ok { id, run, cache_hit, warm_machine } => {
                let results = Json::Arr(
                    run.results
                        .iter()
                        .map(|lines| {
                            Json::Arr(lines.iter().map(|l| Json::Str(l.clone())).collect())
                        })
                        .collect(),
                );
                let procs = Json::Arr(
                    run.report
                        .procs
                        .iter()
                        .map(|p| {
                            let s = &p.stats;
                            obj(vec![
                                ("compute", Json::Num(s.compute as f64)),
                                ("wait", Json::Num(s.wait as f64)),
                                ("sends", Json::Num(s.sends as f64)),
                                ("recvs", Json::Num(s.recvs as f64)),
                                ("bytes_sent", Json::Num(s.bytes_sent as f64)),
                                ("bytes_recvd", Json::Num(s.bytes_recvd as f64)),
                                ("retries", Json::Num(s.retries as f64)),
                                ("drops", Json::Num(s.drops as f64)),
                                ("dups", Json::Num(s.dups as f64)),
                                ("delays", Json::Num(s.delays as f64)),
                            ])
                        })
                        .collect(),
                );
                let mut pairs = vec![("ok", Json::Bool(true))];
                if let Some(id) = id {
                    pairs.push(("id", Json::Str(id.clone())));
                }
                pairs.push(("results", results));
                pairs.push(("sim_cycles", Json::Num(run.report.sim_cycles as f64)));
                pairs.push(("sim_seconds", Json::Num(run.report.sim_seconds)));
                pairs.push(("procs", procs));
                pairs.push(("cache", Json::Str(if *cache_hit { "hit" } else { "miss" }.into())));
                pairs.push((
                    "machine",
                    Json::Str(if *warm_machine { "warm" } else { "cold" }.into()),
                ));
                obj(pairs).to_string()
            }
            Response::Err { id, kind, message } => {
                let mut pairs = vec![("ok", Json::Bool(false))];
                if let Some(id) = id {
                    pairs.push(("id", Json::Str(id.clone())));
                }
                pairs.push((
                    "error",
                    obj(vec![
                        ("kind", Json::Str(kind.as_str().into())),
                        ("message", Json::Str(message.clone())),
                    ]),
                ));
                obj(pairs).to_string()
            }
            Response::Stats(s) => s.to_json().to_string(),
        }
    }
}

/// Monotonic serving counters (all `Relaxed`: totals, not ordering).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    machines_warm: AtomicU64,
    machines_cold: AtomicU64,
    machines_discarded: AtomicU64,
}

/// What a pooled machine is built on: its physical topology plus any
/// collective-algorithm override baked into its config. Machines are
/// only reused across requests that agree on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PoolKey {
    topo: Topology,
    algo: Option<CollectiveAlgo>,
}

impl PoolKey {
    fn of(req: &Request) -> PoolKey {
        PoolKey { topo: req.effective_topology(), algo: req.collective_algo }
    }
}

/// Per-machine-shape pool counters: how often requests for this shape
/// got a warm vs cold machine, and how many idle machines of the shape
/// are pooled right now. `mesh` is the shape's process grid;
/// `topology` is the full canonical spec (distinct topologies can share
/// a grid, e.g. `mesh2d:4x4` and `hypercube:16`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct PoolShapeStats {
    pub mesh: (usize, usize),
    /// Canonical topology spec, e.g. `"mesh2d:2x2"`, `"hypercube:16"`.
    pub topology: String,
    /// Collective-algorithm override baked into the pooled machines
    /// (`"default"` when none).
    pub algo: &'static str,
    pub warm: u64,
    pub cold: u64,
    pub idle: u64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub ok: u64,
    pub errors: u64,
    pub compile_hits: u64,
    pub compile_misses: u64,
    pub machines_warm: u64,
    pub machines_cold: u64,
    pub machines_discarded: u64,
    /// Runs across all currently idle pooled machines that reused a
    /// parked run arena (mailboxes, scheduler state) instead of
    /// allocating — the per-run setup-floor reduction at work.
    pub setup_reuse_hits: u64,
    /// Pool counters per mesh shape, sorted by shape.
    pub pool: Vec<PoolShapeStats>,
}

impl StatsSnapshot {
    /// Fraction of compile lookups served from the cache (1.0 when
    /// there were none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.compile_hits + self.compile_misses;
        if total == 0 {
            1.0
        } else {
            self.compile_hits as f64 / total as f64
        }
    }

    fn to_json(&self) -> Json {
        let pool = Json::Arr(
            self.pool
                .iter()
                .map(|p| {
                    obj(vec![
                        ("mesh", Json::Str(format!("{}x{}", p.mesh.0, p.mesh.1))),
                        ("topology", Json::Str(p.topology.clone())),
                        ("algo", Json::Str(p.algo.into())),
                        ("warm", Json::Num(p.warm as f64)),
                        ("cold", Json::Num(p.cold as f64)),
                        ("idle", Json::Num(p.idle as f64)),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("ok", Json::Bool(true)),
            (
                "stats",
                obj(vec![
                    ("requests", Json::Num(self.requests as f64)),
                    ("ok", Json::Num(self.ok as f64)),
                    ("errors", Json::Num(self.errors as f64)),
                    ("compile_hits", Json::Num(self.compile_hits as f64)),
                    ("compile_misses", Json::Num(self.compile_misses as f64)),
                    ("machines_warm", Json::Num(self.machines_warm as f64)),
                    ("machines_cold", Json::Num(self.machines_cold as f64)),
                    ("machines_discarded", Json::Num(self.machines_discarded as f64)),
                    ("setup_reuse_hits", Json::Num(self.setup_reuse_hits as f64)),
                    ("cache_hit_rate", Json::Num(self.cache_hit_rate())),
                    ("pool", pool),
                ]),
            ),
        ])
    }
}

/// The serving core: program cache + machine pool + counters. Shared
/// across request threads behind an `Arc`; all interior state is
/// synchronized.
pub struct Server {
    programs: Mutex<HashMap<ProgramKey, Arc<Compiled>>>,
    pool: Mutex<HashMap<PoolKey, Vec<Machine>>>,
    /// Warm/cold checkout totals per machine shape (the pool map itself
    /// only knows the machines currently idle).
    shape_counters: Mutex<HashMap<PoolKey, (u64, u64)>>,
    counters: Counters,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

/// The machine pool hands machines across threads; this pins the
/// `Send` bound the pool relies on at compile time.
fn _machines_cross_threads(m: Machine) -> impl Send {
    m
}

impl Server {
    /// An empty server: no cached programs, no warm machines.
    pub fn new() -> Server {
        Server {
            programs: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
            shape_counters: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// Handle one raw JSONL request line, returning one response line
    /// (without the newline). Never panics: anything wrong with the
    /// line, the program, or the run becomes a structured error
    /// response.
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Err {
                    id: None,
                    kind: ErrorKind::BadRequest,
                    message: format!("bad JSON: {e}"),
                }
                .to_json_line();
            }
        };
        if parsed.get("cmd").and_then(Json::as_str) == Some("stats") {
            return Response::Stats(self.stats()).to_json_line();
        }
        let id = parsed.get("id").and_then(Json::as_str).map(str::to_string);
        let request = match Request::from_json(&parsed) {
            Ok(r) => r,
            Err(message) => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return Response::Err { id, kind: ErrorKind::BadRequest, message }.to_json_line();
            }
        };
        self.handle(request).to_json_line()
    }

    /// Handle one parsed request.
    pub fn handle(&self, req: Request) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let resp = self.run_request(&req);
        match &resp {
            Response::Ok { .. } => self.counters.ok.fetch_add(1, Ordering::Relaxed),
            _ => self.counters.errors.fetch_add(1, Ordering::Relaxed),
        };
        resp
    }

    fn run_request(&self, req: &Request) -> Response {
        let id = req.id.clone();
        let (compiled, cache_hit) = match self.compile_cached(req) {
            Ok(pair) => pair,
            Err(message) => {
                return Response::Err { id, kind: ErrorKind::Compile, message };
            }
        };
        let key = PoolKey::of(req);
        let (machine, warm_machine) = match self.checkout_machine(key) {
            Ok(pair) => pair,
            Err(message) => {
                return Response::Err { id, kind: ErrorKind::BadRequest, message };
            }
        };
        // A structured failure (Err) leaves the machine clean — mailbox
        // and stats state is rebuilt per run — so it goes back to the
        // pool either way. Only a genuine panic unwinding out of the
        // engine discards it.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            compiled.try_run_faults(req.engine, &machine, req.faults.as_ref())
        }));
        match outcome {
            Ok(Ok(run)) => {
                self.checkin_machine(key, machine);
                Response::Ok { id, run, cache_hit, warm_machine }
            }
            Ok(Err(failure)) => {
                self.checkin_machine(key, machine);
                Response::Err { id, kind: ErrorKind::Runtime, message: failure.to_string() }
            }
            Err(payload) => {
                drop(machine);
                self.counters.machines_discarded.fetch_add(1, Ordering::Relaxed);
                let what = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied())
                    .unwrap_or("non-string panic payload");
                Response::Err {
                    id,
                    kind: ErrorKind::Internal,
                    message: format!("engine panicked: {what}"),
                }
            }
        }
    }

    /// Look the program up in the cache, compiling on a miss.
    fn compile_cached(&self, req: &Request) -> Result<(Arc<Compiled>, bool), String> {
        let key = ProgramKey {
            src_hash: fnv1a64(req.program.as_bytes()),
            cost_model: COST_MODEL,
            opt_level: req.opt_level,
            engine: req.engine,
        };
        if let Some(hit) = self.programs.lock().unwrap().get(&key) {
            self.counters.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        // Compile outside the lock: a slow compile must not stall
        // cache hits on other threads. Two threads may race to compile
        // the same program; the second insert wins harmlessly.
        let compiled =
            Arc::new(compile_opt(&req.program, req.opt_level).map_err(|e| e.to_string())?);
        self.counters.compile_misses.fetch_add(1, Ordering::Relaxed);
        self.programs.lock().unwrap().insert(key, Arc::clone(&compiled));
        Ok((compiled, false))
    }

    /// Take a warm machine for `key` from the pool, or build a cold
    /// one. The returned bool is `true` for warm.
    fn checkout_machine(&self, key: PoolKey) -> Result<(Machine, bool), String> {
        if let Some(m) = self.pool.lock().unwrap().get_mut(&key).and_then(Vec::pop) {
            self.counters.machines_warm.fetch_add(1, Ordering::Relaxed);
            self.shape_counters.lock().unwrap().entry(key).or_default().0 += 1;
            return Ok((m, true));
        }
        let cfg = MachineConfig::on_topology(key.topo)
            .map_err(|e| format!("bad machine shape {}: {e}", key.topo.spec()))?;
        let cfg = match key.algo {
            Some(algo) => cfg.with_collective_algo(algo),
            None => cfg,
        };
        self.counters.machines_cold.fetch_add(1, Ordering::Relaxed);
        self.shape_counters.lock().unwrap().entry(key).or_default().1 += 1;
        Ok((Machine::new(cfg), false))
    }

    /// Return a machine to the pool for reuse.
    fn checkin_machine(&self, key: PoolKey, machine: Machine) {
        self.pool.lock().unwrap().entry(key).or_default().push(machine);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.counters;
        let (idle, setup_reuse_hits) = {
            let pool = self.pool.lock().unwrap();
            let idle: HashMap<PoolKey, u64> =
                pool.iter().map(|(&key, v)| (key, v.len() as u64)).collect();
            let hits = pool.values().flatten().map(Machine::setup_reuse_hits).sum::<u64>();
            (idle, hits)
        };
        let mut pool: Vec<PoolShapeStats> = self
            .shape_counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&key, &(warm, cold))| {
                let grid = key.topo.grid();
                PoolShapeStats {
                    mesh: (grid.rows, grid.cols),
                    topology: key.topo.spec(),
                    algo: key.algo.map_or("default", |a| a.as_str()),
                    warm,
                    cold,
                    idle: idle.get(&key).copied().unwrap_or(0),
                }
            })
            .collect();
        pool.sort_by(|a, b| (&a.topology, a.algo).cmp(&(&b.topology, b.algo)));
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            ok: c.ok.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            compile_hits: c.compile_hits.load(Ordering::Relaxed),
            compile_misses: c.compile_misses.load(Ordering::Relaxed),
            machines_warm: c.machines_warm.load(Ordering::Relaxed),
            machines_cold: c.machines_cold.load(Ordering::Relaxed),
            machines_discarded: c.machines_discarded.load(Ordering::Relaxed),
            setup_reuse_hits,
            pool,
        }
    }

    /// Number of idle warm machines currently pooled (tests).
    pub fn pooled_machines(&self) -> usize {
        self.pool.lock().unwrap().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HELLO: &str = "void main() { if (procId == 0) { print(procId + 7); } }";

    /// A communicating program: distributed array fold, result 120.
    const FOLD: &str = "int initf(Index ix) { return ix[0] + ix[1]; } \
                        int conv(int v, Index ix) { return v; } \
                        void main() { \
                          array<int> a = array_create(1, {16,1}, {0,0}, {0-1,0-1}, initf, DISTR_DEFAULT); \
                          int total = array_fold(conv, (+), a); \
                          if (procId == 0) { print(total); } \
                        }";

    #[test]
    fn caches_compiles_and_reuses_machines() {
        let server = Server::new();
        for round in 0..3 {
            let resp = server.handle(Request::program(HELLO));
            let Response::Ok { run, cache_hit, warm_machine, .. } = resp else {
                panic!("round {round} failed");
            };
            assert_eq!(run.results[0], vec!["7".to_string()]);
            assert_eq!(cache_hit, round > 0, "round {round}");
            assert_eq!(warm_machine, round > 0, "round {round}");
        }
        let stats = server.stats();
        assert_eq!(stats.compile_misses, 1);
        assert_eq!(stats.compile_hits, 2);
        assert_eq!(stats.machines_cold, 1);
        assert_eq!(stats.machines_warm, 2);
        assert_eq!(server.pooled_machines(), 1);
    }

    #[test]
    fn opt_level_and_engine_key_the_cache_separately() {
        let server = Server::new();
        for (engine, level) in
            [(Engine::Vm, OptLevel::O2), (Engine::Vm, OptLevel::O0), (Engine::Ast, OptLevel::O2)]
        {
            let req = Request { engine, opt_level: level, ..Request::program(HELLO) };
            assert!(matches!(server.handle(req), Response::Ok { cache_hit: false, .. }));
        }
        assert_eq!(server.stats().compile_misses, 3);
    }

    #[test]
    fn runtime_errors_are_structured_and_keep_the_machine_warm() {
        let server = Server::new();
        // `procId - procId` defeats constant folding, so proc 0 really
        // divides by zero at run time in both engines.
        let faulty = "void main() { int z = procId - procId; print(100 / z); }";
        for engine in [Engine::Ast, Engine::Vm] {
            let req = Request { engine, ..Request::program(faulty) };
            let Response::Err { kind, message, .. } = server.handle(req) else {
                panic!("expected a runtime error ({engine:?})");
            };
            assert_eq!(kind, ErrorKind::Runtime, "{engine:?}");
            assert!(message.contains("division by zero"), "{engine:?}: {message}");
        }
        // The failing runs must not have poisoned the pooled machine.
        assert_eq!(server.stats().machines_discarded, 0);
        let resp = server.handle(Request::program(HELLO));
        assert!(matches!(resp, Response::Ok { warm_machine: true, .. }));
    }

    #[test]
    fn crash_fault_plans_ride_per_request() {
        let server = Server::new();
        let crash = Request {
            faults: Some(FaultPlan::parse("seed=7,crash=3@50").unwrap()),
            ..Request::program(FOLD)
        };
        let Response::Err { kind, message, .. } = server.handle(crash) else {
            panic!("crash plan should abort the run");
        };
        assert_eq!(kind, ErrorKind::Runtime);
        assert!(message.contains("crash"), "{message}");
        // Same machine, fault-free request: clean run, warm machine.
        let resp = server.handle(Request::program(FOLD));
        let Response::Ok { run, warm_machine, .. } = resp else {
            panic!("fault-free follow-up should succeed");
        };
        assert!(warm_machine);
        assert_eq!(run.results[0], vec!["120".to_string()]);
    }

    #[test]
    fn bad_requests_and_bad_programs_are_rejected_cleanly() {
        let server = Server::new();
        let cases = [
            ("{not json", "bad_request"),
            (r#"{"program":"void main() {}","mesh":"0x4"}"#, "bad_request"),
            (r#"{"program":"void main() {}","engine":"jit"}"#, "bad_request"),
            (r#"{"program":"void main() {}","bogus":1}"#, "bad_request"),
            (r#"{"mesh":"2x2"}"#, "bad_request"),
            (r#"{"program":"int main() { return notdefined; }"}"#, "compile"),
        ];
        for (line, want_kind) in cases {
            let resp = server.handle_line(line);
            assert!(resp.contains("\"ok\":false"), "{line} -> {resp}");
            assert!(resp.contains(&format!("\"kind\":\"{want_kind}\"")), "{line} -> {resp}");
        }
        let stats = server.stats();
        assert_eq!(stats.requests, cases.len() as u64);
        assert_eq!(stats.errors, cases.len() as u64);
    }

    #[test]
    fn stats_command_reports_counters_as_json() {
        let server = Server::new();
        server.handle(Request::program(HELLO));
        let resp = server.handle_line(r#"{"cmd":"stats"}"#);
        let v = json::parse(&resp).unwrap();
        let stats = v.get("stats").expect("stats object");
        assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("compile_misses").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn native_engine_requests_are_served_and_cached() {
        let server = Server::new();
        for round in 0..3 {
            let req = Request { engine: Engine::Native, ..Request::program(FOLD) };
            let Response::Ok { run, cache_hit, .. } = server.handle(req) else {
                panic!("native round {round} failed");
            };
            assert_eq!(run.results[0], vec!["120".to_string()]);
            assert_eq!(cache_hit, round > 0, "round {round}");
        }
        // The native result must match the VM's, served from a separate
        // cache entry (the engine is part of the program key).
        let vm = server.handle(Request::program(FOLD));
        let Response::Ok { run, cache_hit: false, .. } = vm else {
            panic!("vm run after native must be a fresh cache entry");
        };
        assert_eq!(run.results[0], vec!["120".to_string()]);
    }

    #[test]
    fn stats_track_the_pool_per_mesh_shape() {
        let server = Server::new();
        for mesh in [(2, 2), (2, 2), (1, 3), (4, 4), (1, 3)] {
            let req = Request { mesh, ..Request::program(HELLO) };
            assert!(matches!(server.handle(req), Response::Ok { .. }), "{mesh:?}");
        }
        let stats = server.stats();
        let shape = |mesh, spec: &str, warm, cold, idle| PoolShapeStats {
            mesh,
            topology: spec.to_string(),
            algo: "default",
            warm,
            cold,
            idle,
        };
        assert_eq!(
            stats.pool,
            vec![
                shape((1, 3), "mesh2d:1x3", 1, 1, 1),
                shape((2, 2), "mesh2d:2x2", 1, 1, 1),
                shape((4, 4), "mesh2d:4x4", 0, 1, 1),
            ]
        );
        // ... and the JSON stats reply carries the same breakdown.
        let resp = server.handle_line(r#"{"cmd":"stats"}"#);
        let v = json::parse(&resp).unwrap();
        let Some(Json::Arr(pool)) = v.get("stats").and_then(|s| s.get("pool")) else {
            panic!("stats must contain a pool array: {resp}");
        };
        assert_eq!(pool.len(), 3);
        assert_eq!(pool[1].get("mesh").and_then(Json::as_str), Some("2x2"));
        assert_eq!(pool[1].get("warm").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn topology_requests_pool_separately_from_mesh_requests() {
        let server = Server::new();
        // hypercube:16 and mesh2d:4x4 share a 4x4 process grid but are
        // distinct machines; collective_algo splits the pool further.
        let cube = Request {
            topology: Some(Topology::parse("hypercube:16").unwrap()),
            ..Request::program(FOLD)
        };
        let mesh44 = Request { mesh: (4, 4), ..Request::program(FOLD) };
        let cube_rd = Request { collective_algo: Some(CollectiveAlgo::RecDouble), ..cube.clone() };
        let mut cycles = Vec::new();
        for req in [cube.clone(), cube, mesh44, cube_rd] {
            let Response::Ok { run, .. } = server.handle(req) else {
                panic!("topology request failed");
            };
            assert_eq!(run.results[0], vec!["120".to_string()]);
            cycles.push(run.report.sim_cycles);
        }
        // Warm reuse only within the same (topology, algo) shape.
        assert_eq!(server.stats().machines_warm, 1);
        assert_eq!(server.stats().machines_cold, 3);
        // Identical requests are cycle-identical; the forced rd variant
        // runs the same program in different virtual time.
        assert_eq!(cycles[0], cycles[1]);
        assert_ne!(cycles[0], cycles[3]);
        let pool = server.stats().pool;
        let specs: Vec<(String, &str)> =
            pool.iter().map(|p| (p.topology.clone(), p.algo)).collect();
        assert_eq!(
            specs,
            vec![
                ("hypercube:16".to_string(), "default"),
                ("hypercube:16".to_string(), "rd"),
                ("mesh2d:4x4".to_string(), "default"),
            ]
        );
    }

    #[test]
    fn topology_and_algo_parse_from_json_requests() {
        let server = Server::new();
        let line = format!(
            r#"{{"program":{},"topology":"fattree:2,4","collective_algo":"ring"}}"#,
            Json::Str(FOLD.into())
        );
        let resp = server.handle_line(&line);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"120\""), "{resp}");
        for (line, needle) in [
            (r#"{"program":"void main() {}","topology":"donut:9"}"#, "unknown kind"),
            (r#"{"program":"void main() {}","collective_algo":"bogo"}"#, "tree|ring|rd|auto"),
            (r#"{"program":"void main() {}","topology":"hypercube:15"}"#, "power of two"),
        ] {
            let resp = server.handle_line(line);
            assert!(resp.contains("\"kind\":\"bad_request\""), "{line} -> {resp}");
            assert!(resp.contains(needle), "{line} -> {resp}");
        }
    }

    #[test]
    fn response_lines_are_valid_json_with_per_proc_stats() {
        let server = Server::new();
        let line = obj(vec![
            ("id", Json::Str("req-1".into())),
            ("program", Json::Str(FOLD.into())),
            ("mesh", Json::Str("2x2".into())),
            ("engine", Json::Str("vm".into())),
            ("opt_level", Json::Num(2.0)),
        ])
        .to_string();
        let resp = server.handle_line(&line);
        let v = json::parse(&resp).expect("response parses");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
        let Some(Json::Arr(procs)) = v.get("procs") else { panic!("procs array") };
        assert_eq!(procs.len(), 4);
        assert!(procs[0].get("sends").and_then(Json::as_u64).is_some());
        assert!(v.get("sim_cycles").and_then(Json::as_u64).unwrap() > 0);
    }
}
